"""The full broadcast x coin matrix, plus non-default wave lengths."""

import pytest

from repro.common.config import SystemConfig
from repro.core.harness import DagRiderDeployment


@pytest.mark.parametrize("broadcast", ["bracha", "gossip", "avid"])
@pytest.mark.parametrize("coin_mode", ["ideal", "threshold", "piggyback"])
class TestMatrix:
    def test_orders_consistently(self, broadcast, coin_mode):
        config = SystemConfig(n=4, seed=21)
        dep = DagRiderDeployment(config, broadcast=broadcast, coin_mode=coin_mode)
        assert dep.run_until_ordered(15, max_events=700_000)
        dep.check_total_order()
        dep.check_integrity()


class TestCoinEquivalence:
    def test_threshold_and_piggyback_agree_on_leaders(self):
        """Both real-coin transports resolve identical leaders per wave."""
        leaders = {}
        for coin_mode in ("threshold", "piggyback"):
            config = SystemConfig(n=4, seed=22)
            dep = DagRiderDeployment(config, coin_mode=coin_mode)
            assert dep.run_until_wave(3, max_events=700_000)
            node = dep.correct_nodes[0]
            leaders[coin_mode] = [node.coin.leader_of(w) for w in (1, 2, 3)]
        assert leaders["threshold"] == leaders["piggyback"]

    def test_piggyback_sends_no_dedicated_share_messages(self):
        config = SystemConfig(n=4, seed=23)
        dep = DagRiderDeployment(config, coin_mode="piggyback")
        assert dep.run_until_wave(2, max_events=700_000)
        assert dep.metrics.messages_by_tag.get("CoinShareMessage", 0) == 0

    def test_threshold_coin_share_traffic_is_linear_per_wave(self):
        config = SystemConfig(n=4, seed=24)
        dep = DagRiderDeployment(config, coin_mode="threshold")
        assert dep.run_until_wave(3, max_events=700_000)
        shares = dep.metrics.messages_by_tag.get("CoinShareMessage", 0)
        # Each of 4 processes broadcasts one share (n messages) per wave;
        # at most a few waves were invoked.
        waves_invoked = max(
            node.ordering._completed_wave for node in dep.correct_nodes
        )
        assert shares <= 4 * 4 * (waves_invoked + 1)


class TestWaveLengthAblation:
    @pytest.mark.parametrize("wave_length", [4, 5, 6])
    def test_longer_waves_still_safe_and_live(self, wave_length):
        config = SystemConfig(n=4, seed=25, wave_length=wave_length)
        dep = DagRiderDeployment(config)
        assert dep.run_until_ordered(15, max_events=700_000)
        dep.check_total_order()

    def test_short_waves_remain_safe(self):
        """wave_length < 4 loses the common-core liveness argument but the
        commit rule's quorum intersection still guarantees safety."""
        config = SystemConfig(n=4, seed=26, wave_length=2)
        dep = DagRiderDeployment(config)
        dep.run(max_events=300_000)
        dep.check_total_order()
        dep.check_integrity()
