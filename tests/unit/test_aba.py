"""Binary agreement over the simulated network."""

import pytest

from repro.baselines.aba import AbaMessage, BinaryAgreement
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.sim.adversary import UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class AbaHost(Process):
    def __init__(self, pid, network, seed):
        super().__init__(pid, network)
        self.decided = None
        self.aba = BinaryAgreement(
            pid,
            network.config,
            coin=lambda r: derive_rng(seed, "aba-coin", r).randrange(2),
            broadcast=self.broadcast,
            on_decide=self._decide,
        )

    def _decide(self, value):
        assert self.decided is None, "double decide"
        self.decided = value

    def on_message(self, src, message):
        if isinstance(message, AbaMessage):
            self.aba.handle(src, message)


def run_aba(inputs, seed=0, n=None):
    n = n or len(inputs)
    config = SystemConfig(n=n, seed=seed)
    sched = Scheduler()
    network = Network(sched, config, UniformDelay(derive_rng(seed, "d")))
    hosts = [AbaHost(pid, network, seed) for pid in range(n)]
    for host, value in zip(hosts, inputs):
        if value is not None:
            sched.call_at(0.0, lambda h=host, v=value: h.aba.propose(v))
    sched.run(max_events=100_000)
    return hosts


class TestBinaryAgreement:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_validity(self, value):
        """All-same inputs must decide that value (BV-validity)."""
        for seed in range(5):
            hosts = run_aba([value] * 4, seed=seed)
            assert all(host.decided == value for host in hosts)

    def test_agreement_mixed_inputs(self):
        for seed in range(10):
            hosts = run_aba([0, 1, 0, 1], seed=seed)
            decisions = {host.decided for host in hosts}
            assert len(decisions) == 1
            assert decisions != {None}

    def test_agreement_n7(self):
        hosts = run_aba([0, 1, 1, 0, 1, 0, 1], seed=3)
        decisions = {host.decided for host in hosts}
        assert len(decisions) == 1 and None not in decisions

    def test_terminates_with_one_silent_process(self):
        """f = 1 silent party must not block the other 3."""
        hosts = run_aba([1, 1, 1, None], seed=4)
        deciders = [host for host in hosts[:3]]
        assert all(host.decided == 1 for host in deciders)

    def test_decision_is_some_input(self):
        """Mixed inputs decide 0 or 1 — trivially an input; unanimity is
        the binding case covered above."""
        hosts = run_aba([1, 1, 1, 1], seed=5)
        assert all(host.decided == 1 for host in hosts)

    def test_propose_idempotent(self):
        config = SystemConfig(n=4, seed=0)
        sched = Scheduler()
        network = Network(sched, config, UniformDelay(derive_rng(0, "d")))
        hosts = [AbaHost(pid, network, 0) for pid in range(4)]
        host = hosts[0]
        host.aba.propose(1)
        round_after = host.aba.round
        host.aba.propose(0)  # ignored
        assert host.aba.estimate == 1
        assert host.aba.round == round_after
