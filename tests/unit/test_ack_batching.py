"""Ack batching: one cumulative ack per read-burst instead of per frame."""

import asyncio

from repro.broadcast.gossip import GossipSubscribe
from repro.codec import encode_message
from repro.common.config import SystemConfig
from repro.runtime.peers import allocate_port_block
from repro.runtime.reliable import HANDSHAKE, LinkConfig, frame_bytes
from repro.runtime.transport import TcpNetwork


FRAMES = 60


class Sink:
    def __init__(self, pid: int):
        self.pid = pid
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message))


async def eventually(predicate, timeout=10.0, poll=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(poll)
    return predicate()


async def busy_link_control_bits(link_config: LinkConfig) -> tuple[int, int]:
    """Blast FRAMES data frames at a node in one write; return (acks, bits).

    Writing the whole burst before the receiver's read loop wakes guarantees
    the frames arrive in (at most a few) bursts, which is exactly the busy
    link scenario the batching optimization targets.
    """
    ports = allocate_port_block(2)
    peers = {pid: ("127.0.0.1", ports[pid]) for pid in range(2)}
    net = TcpNetwork(SystemConfig(n=2, seed=3), 0, peers, link_config=link_config)
    sink = Sink(0)
    net.register(sink)
    await net.start()
    try:
        _reader, writer = await asyncio.open_connection(*peers[0])
        writer.write(HANDSHAKE.pack(1, 1))  # handshake as pid 1
        blob = b"".join(
            frame_bytes(seq, encode_message(GossipSubscribe(f"m{seq}")))
            for seq in range(1, FRAMES + 1)
        )
        writer.write(blob)
        await writer.drain()
        assert await eventually(lambda: len(sink.received) == FRAMES)
        # Let any scheduled ack flush run before sampling the counters.
        assert await eventually(lambda: net.link_stats.acks_sent > 0)
        await asyncio.sleep(0.05)
        writer.close()
        return net.link_stats.acks_sent, net.link_stats.control_bits
    finally:
        await net.close()


def test_burst_coalescing_halves_control_bits():
    async def main():
        per_frame_acks, per_frame_bits = await busy_link_control_bits(
            LinkConfig(ack_every_frame=True)
        )
        batched_acks, batched_bits = await busy_link_control_bits(LinkConfig())
        # Per-frame behavior acks every data frame.
        assert per_frame_acks == FRAMES
        # Batching coalesces bursts: control traffic drops at least ~half
        # (in practice far more — the whole blob is one or two bursts).
        assert batched_acks < per_frame_acks
        assert batched_bits <= per_frame_bits * 0.55
        assert batched_acks >= 1

    asyncio.run(main())


def test_batched_ack_is_cumulative():
    async def main():
        ports = allocate_port_block(2)
        peers = {pid: ("127.0.0.1", ports[pid]) for pid in range(2)}
        net = TcpNetwork(SystemConfig(n=2, seed=3), 0, peers)
        net.register(Sink(0))
        await net.start()
        try:
            reader, writer = await asyncio.open_connection(*peers[0])
            writer.write(HANDSHAKE.pack(1, 1))
            writer.write(
                b"".join(
                    frame_bytes(seq, encode_message(GossipSubscribe(f"m{seq}")))
                    for seq in range(1, 11)
                )
            )
            await writer.drain()
            # Whatever the burst split was, the last ack must cover seq 10.
            from repro.codec import decode_message
            from repro.codec.frames import LinkAck
            from repro.runtime.reliable import HEADER, SEQ

            cumulative = 0
            while cumulative < 10:
                (length,) = HEADER.unpack(
                    await asyncio.wait_for(reader.readexactly(HEADER.size), 5.0)
                )
                body = await asyncio.wait_for(reader.readexactly(length), 5.0)
                message = decode_message(body[SEQ.size :])
                if isinstance(message, LinkAck):
                    assert message.cumulative > cumulative  # monotone
                    cumulative = message.cumulative
            assert cumulative == 10
            writer.close()
        finally:
            await net.close()

    asyncio.run(main())


def test_broadcast_encodes_once(monkeypatch):
    async def main():
        import repro.runtime.transport as transport_module

        ports = allocate_port_block(4)
        peers = {pid: ("127.0.0.1", ports[pid]) for pid in range(4)}
        net = TcpNetwork(SystemConfig(n=4, seed=3), 0, peers)
        sink = Sink(0)
        net.register(sink)

        calls = []
        real_encode = transport_module.encode_message
        monkeypatch.setattr(
            transport_module,
            "encode_message",
            lambda message: (calls.append(message), real_encode(message))[1],
        )
        net.broadcast(0, GossipSubscribe("hello"))
        # One codec pass serves all three remote links (self skips the wire).
        assert len(calls) == 1
        assert sum(link.queue_depth for link in net._links.values()) == 3
        await eventually(lambda: len(sink.received) == 1, timeout=2.0)
        assert sink.received == [(0, GossipSubscribe("hello"))]
        await net.close()

    asyncio.run(main())
