"""Mempool admission control: budgets, batching triggers, delivery stamps."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mempool.admission import (
    REASON_BUSY_BYTES,
    REASON_BUSY_TXS,
    REASON_OVERSIZE,
    AdmissionConfig,
    Mempool,
    txid_of,
)
from repro.obs.context import Observability


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_mempool(clock=None, obs=None, **config) -> Mempool:
    return Mempool(0, config=AdmissionConfig(**config), clock=clock, obs=obs)


class TestConfig:
    def test_defaults_are_valid(self):
        config = AdmissionConfig()
        assert config.max_pending_txs >= config.batch_txs

    @pytest.mark.parametrize(
        "field", ["max_pending_txs", "max_pending_bytes", "max_tx_bytes",
                  "batch_txs", "batch_bytes"],
    )
    def test_non_positive_budget_rejected(self, field):
        with pytest.raises(ConfigurationError, match=field):
            AdmissionConfig(**{field: 0})

    def test_zero_deadline_rejected(self):
        with pytest.raises(ConfigurationError, match="batch_deadline"):
            AdmissionConfig(batch_deadline=0)

    def test_batch_larger_than_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            AdmissionConfig(batch_txs=100, max_pending_txs=10)


class TestAdmission:
    def test_accept_returns_content_addressed_txid(self):
        pool = make_mempool()
        result = pool.submit(b"hello")
        assert result.accepted and result.reason is None
        assert result.txid == txid_of(b"hello")
        assert pool.pending_txs == 1
        assert pool.pending_bytes == 5

    def test_count_budget_rejects_busy(self):
        pool = make_mempool(max_pending_txs=2, batch_txs=2)
        assert pool.submit(b"a").accepted
        assert pool.submit(b"b").accepted
        result = pool.submit(b"c")
        assert not result.accepted
        assert result.reason == REASON_BUSY_TXS
        assert result.busy
        assert pool.pending_txs == 2

    def test_byte_budget_rejects_busy(self):
        pool = make_mempool(max_pending_bytes=10)
        assert pool.submit(b"x" * 8).accepted
        result = pool.submit(b"y" * 8)
        assert not result.accepted
        assert result.reason == REASON_BUSY_BYTES
        assert result.busy

    def test_oversize_is_not_busy(self):
        pool = make_mempool(max_tx_bytes=4)
        result = pool.submit(b"toolarge")
        assert not result.accepted
        assert result.reason == REASON_OVERSIZE
        assert not result.busy
        assert pool.pending_txs == 0

    def test_duplicate_submit_is_idempotent(self):
        pool = make_mempool()
        first = pool.submit(b"tx")
        again = pool.submit(b"tx")
        assert again.accepted and again.reason == "duplicate"
        assert again.txid == first.txid
        assert pool.pending_txs == 1
        assert pool.submitted_total == 1

    def test_duplicate_suppressed_while_in_flight(self):
        pool = make_mempool(batch_txs=1, max_pending_txs=4)
        pool.submit(b"tx")
        batch = pool.take_batch()
        pool.register_flush(0, batch)
        assert pool.submit(b"tx").reason == "duplicate"
        pool.deliveries(0)
        # After delivery the same bytes are a fresh transaction again.
        assert pool.submit(b"tx").reason is None


class TestBatching:
    def test_no_batch_until_trigger(self):
        clock = FakeClock()
        pool = make_mempool(clock=clock, batch_txs=4, batch_deadline=1.0)
        pool.submit(b"a")
        assert not pool.batch_due()
        assert pool.take_batch() == []

    def test_count_trigger(self):
        pool = make_mempool(batch_txs=2)
        pool.submit(b"a")
        pool.submit(b"b")
        pool.submit(b"c")
        assert pool.batch_due()
        batch = pool.take_batch()
        assert [tx.data for tx in batch] == [b"a", b"b"]
        assert pool.pending_txs == 1

    def test_byte_trigger(self):
        pool = make_mempool(batch_bytes=10, batch_txs=64)
        pool.submit(b"x" * 12)
        assert pool.batch_due()
        assert len(pool.take_batch()) == 1

    def test_deadline_trigger(self):
        clock = FakeClock()
        pool = make_mempool(clock=clock, batch_txs=64, batch_deadline=0.5)
        pool.submit(b"lonely")
        assert not pool.batch_due()
        clock.now = 0.6
        assert pool.batch_due()
        assert len(pool.take_batch()) == 1

    def test_force_flush_ignores_triggers(self):
        pool = make_mempool(batch_txs=64, batch_deadline=10.0)
        pool.submit(b"a")
        assert pool.take_batch() == []
        assert len(pool.take_batch(force=True)) == 1

    def test_batch_frees_byte_budget(self):
        pool = make_mempool(max_pending_bytes=10, batch_txs=1)
        pool.submit(b"x" * 8)
        pool.take_batch()
        assert pool.submit(b"y" * 8).accepted


class TestDelivery:
    def test_latency_stamped_from_clock(self):
        clock = FakeClock()
        pool = make_mempool(clock=clock, batch_txs=2)
        pool.submit(b"a")
        clock.now = 1.0
        pool.submit(b"b")
        batch = pool.take_batch()
        pool.register_flush(5, batch)
        clock.now = 3.0
        delivered = pool.deliveries(5)
        assert [tx.latency for tx in delivered] == [3.0, 2.0]
        assert pool.delivered_total == 2
        assert pool.in_flight_txs == 0

    def test_unknown_sequence_acks_nothing(self):
        # The crash-recovery guarantee: batches flushed by a previous
        # incarnation are not in this mempool's map, so they never ack.
        pool = make_mempool()
        assert pool.deliveries(123) == []
        assert pool.delivered_total == 0

    def test_status_counts(self):
        pool = make_mempool(batch_txs=1, max_tx_bytes=4)
        pool.submit(b"ab")
        pool.submit(b"toolarge")
        pool.register_flush(0, pool.take_batch())
        status = pool.status()
        assert status == {
            "pending": 0, "pending_bytes": 0, "in_flight": 1,
            "submitted": 1, "rejected": 1, "delivered": 0,
        }


class TestInstruments:
    def test_counters_and_histograms_recorded(self):
        obs = Observability()
        clock = FakeClock()
        pool = Mempool(
            0, config=AdmissionConfig(batch_txs=2, max_tx_bytes=4),
            clock=clock, obs=obs,
        )
        pool.submit(b"a")
        pool.submit(b"b")
        pool.submit(b"toolarge")
        pool.register_flush(0, pool.take_batch())
        clock.now = 0.03
        pool.deliveries(0)
        snapshot = obs.snapshot()
        assert snapshot["counters"]["ingress.submitted"] == 2
        assert snapshot["counters"]["ingress.rejected"] == 1
        assert snapshot["counters"]["ingress.delivered"] == 2
        assert snapshot["histograms"]["ingress.batch_fill"]["count"] == 1
        assert snapshot["histograms"]["mempool.depth"]["count"] == 1
        assert snapshot["histograms"]["ingress.e2e_latency"]["count"] == 2
