"""Adversary delay strategies."""

import random

import pytest

from repro.sim.adversary import (
    FixedDelay,
    LeaderSuppressionAdversary,
    PartitionDelay,
    SlowProcessDelay,
    UniformDelay,
)
from repro.sim.wire import Message


class Dummy(Message):
    def wire_size(self, n):
        return 8


class WaveTagged(Message):
    def __init__(self, wave):
        self.wave = wave

    def wire_size(self, n):
        return 8


MSG = Dummy()


class TestStrategies:
    def test_uniform_in_range(self):
        adversary = UniformDelay(random.Random(0), low=0.5, high=2.0)
        for _ in range(100):
            assert 0.5 <= adversary.delay(0, 1, MSG, 0.0) <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformDelay(random.Random(0), low=2.0, high=1.0)

    def test_fixed(self):
        assert FixedDelay(1.5).delay(0, 1, MSG, 0.0) == 1.5
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_slow_process_penalty_applies_to_slow_sender_only(self):
        adversary = SlowProcessDelay(FixedDelay(1.0), slow={3}, penalty=10.0)
        assert adversary.delay(3, 0, MSG, 0.0) == 11.0
        assert adversary.delay(0, 3, MSG, 0.0) == 1.0

    def test_partition_holds_cross_traffic_until_heal(self):
        adversary = PartitionDelay(FixedDelay(1.0), group_a={0, 1}, heal_time=50.0)
        # Inside a group: base delay.
        assert adversary.delay(0, 1, MSG, 0.0) == 1.0
        assert adversary.delay(2, 3, MSG, 0.0) == 1.0
        # Across: arrives no earlier than heal_time (+ base).
        assert adversary.delay(0, 2, MSG, 0.0) == 51.0
        # After healing, cross traffic is normal again.
        assert adversary.delay(0, 2, MSG, 100.0) == 1.0

    def test_leader_suppression_targets_predicted_leader(self):
        adversary = LeaderSuppressionAdversary(
            FixedDelay(1.0),
            leader_oracle=lambda wave: wave % 4,
            wave_of=lambda msg: getattr(msg, "wave", None),
            penalty=20.0,
        )
        # Wave 1's predicted leader is process 1.
        assert adversary.delay(1, 2, WaveTagged(1), 0.0) == 21.0
        assert adversary.delay(2, 1, WaveTagged(1), 0.0) == 1.0
        # Untagged traffic unaffected.
        assert adversary.delay(1, 2, MSG, 0.0) == 1.0

    def test_group_victim_delay(self):
        from repro.sim.adversary import GroupVictimDelay

        adversary = GroupVictimDelay(
            FixedDelay(1.0),
            n=4,
            victims=1,
            seed=9,
            group_of=lambda msg: getattr(msg, "wave", None),
            penalty=10.0,
        )
        victims = adversary.victims_of(1)
        assert len(victims) == 1
        (victim,) = victims
        assert adversary.delay(victim, 0, WaveTagged(1), 0.0) == 11.0
        non_victim = (victim + 1) % 4
        assert adversary.delay(non_victim, 0, WaveTagged(1), 0.0) == 1.0
        # Ungrouped traffic unaffected; victim sets deterministic per group.
        assert adversary.delay(victim, 0, MSG, 0.0) == 1.0
        assert adversary.victims_of(1) == victims
        assert any(adversary.victims_of(g) != victims for g in range(2, 20))

    def test_leader_suppression_max_wave(self):
        adversary = LeaderSuppressionAdversary(
            FixedDelay(1.0),
            leader_oracle=lambda wave: 0,
            wave_of=lambda msg: getattr(msg, "wave", None),
            penalty=20.0,
            max_wave=2,
        )
        assert adversary.delay(0, 1, WaveTagged(2), 0.0) == 21.0
        assert adversary.delay(0, 1, WaveTagged(3), 0.0) == 1.0
