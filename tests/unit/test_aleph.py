"""Aleph-style baseline: agreement, termination, and its validity gap."""

import pytest

from repro.baselines.aleph import build_aleph_cluster
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.sim.adversary import SlowProcessDelay, UniformDelay
from repro.sim.network import Network
from repro.sim.scheduler import Scheduler


def run_aleph(n=4, seed=0, target=12, adversary=None, max_events=800_000):
    config = SystemConfig(n=n, seed=seed)
    sched = Scheduler()
    adversary = adversary or UniformDelay(derive_rng(seed, "d"))
    network = Network(sched, config, adversary)
    nodes = build_aleph_cluster(config, network)
    for node in nodes:
        sched.call_at(0.0, node.start)
    sched.run(
        max_events=max_events,
        stop_when=lambda: all(len(node.ordered) >= target for node in nodes),
    )
    return nodes, network


class TestAleph:
    @pytest.mark.parametrize("seed", range(3))
    def test_total_order(self, seed):
        nodes, _net = run_aleph(seed=seed)
        logs = [[(e.round, e.source) for e in node.ordered] for node in nodes]
        shortest = min(len(log) for log in logs)
        assert shortest >= 12
        for log in logs[1:]:
            assert log[:shortest] == logs[0][:shortest]

    def test_no_duplicates(self):
        nodes, _net = run_aleph(seed=3)
        for node in nodes:
            keys = [(e.round, e.source) for e in node.ordered]
            assert len(keys) == len(set(keys))

    def test_n7(self):
        nodes, _net = run_aleph(n=7, seed=4, target=10)
        logs = [[(e.round, e.source) for e in node.ordered] for node in nodes]
        shortest = min(len(log) for log in logs)
        for log in logs[1:]:
            assert log[:shortest] == logs[0][:shortest]

    def test_ordering_layer_costs_messages(self):
        """The §7 contrast: Aleph pays ABA traffic DAG-Rider does not."""
        _nodes, network = run_aleph(seed=5)
        aba_bits = sum(
            bits
            for tag, bits in network.metrics.bits_by_tag.items()
            if tag.startswith("aleph.")
        )
        assert aba_bits > 0

    def test_slow_process_units_skipped(self):
        """No weak edges: a slow process's units are voted out (validity gap).

        With a large enough penalty the slow process's units never arrive
        before the visibility horizon, every ABA votes 0, and its proposals
        are skipped — DAG-Rider's weak edges exist precisely to prevent this.
        """
        seed = 6
        adversary = SlowProcessDelay(
            UniformDelay(derive_rng(seed, "d"), 0.1, 1.0), slow={3}, penalty=30.0
        )
        nodes, _net = run_aleph(seed=seed, target=20, adversary=adversary)
        fast_logs = [node.ordered for node in nodes[:3]]
        for log in fast_logs:
            sources = {entry.source for entry in log}
            assert 3 not in sources
