"""Analysis utilities: chain quality, scaling fits, stats, rendering."""

import math

import pytest

from repro.analysis.chain_quality import chain_quality_report, check_chain_quality
from repro.analysis.complexity import fit_exponent, select_model
from repro.analysis.render import describe_edges, render_dag
from repro.analysis.stats import geometric_mean_trials, percentile, summarize
from repro.dag.store import DagStore
from repro.dag.vertex import Ref, Vertex
from repro.mempool.blocks import Block


class TestChainQuality:
    def test_all_correct_passes(self):
        assert check_chain_quality([0, 1, 2] * 10, byzantine=set(), f=1)

    def test_paper_bound_met_with_f_byzantine(self):
        # Alternating pattern: 1 byzantine per 3 — exactly (f+1)/(2f+1) correct.
        sources = [0, 1, 3] * 10  # 3 is byzantine
        report = chain_quality_report(sources, byzantine={3}, f=1)
        assert report.violations == 0
        assert report.worst_prefix_fraction >= 2 / 3

    def test_violation_detected(self):
        sources = [3, 3, 0] * 5  # 2 byzantine per 3: below f+1 correct
        assert not check_chain_quality(sources, byzantine={3}, f=1)

    def test_report_fields(self):
        report = chain_quality_report([0, 3, 1, 2, 3, 0], byzantine={3}, f=1)
        assert report.total == 6
        assert report.correct == 4
        assert 0 < report.correct_fraction < 1

    def test_empty_log(self):
        report = chain_quality_report([], byzantine={3}, f=1)
        assert report.violations == 0
        assert report.correct_fraction == 1.0


class TestComplexityFits:
    def test_exponent_of_square(self):
        ns = [4, 8, 16, 32]
        assert fit_exponent(ns, [n**2 for n in ns]) == pytest.approx(2.0)

    def test_exponent_of_linear_with_noise(self):
        ns = [4, 8, 16, 32, 64]
        ys = [3.1 * n * (1 + 0.05 * ((-1) ** i)) for i, n in enumerate(ns)]
        assert 0.9 < fit_exponent(ns, ys) < 1.1

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("1", lambda n: 5.0),
            ("log n", lambda n: 2 * math.log(n)),
            ("n", lambda n: 3 * n),
            ("n log n", lambda n: 0.5 * n * math.log(n)),
            ("n^2", lambda n: 0.1 * n * n),
            ("n^3", lambda n: 0.01 * n**3),
        ],
    )
    def test_model_selection_recovers_generator(self, name, fn):
        ns = [4, 7, 10, 13, 16, 22, 31]
        assert select_model(ns, [fn(n) for n in ns]) == name

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_exponent([4], [5])
        with pytest.raises(ValueError):
            fit_exponent([4, 8], [0, 5])
        with pytest.raises(ValueError):
            select_model([4], [5])


class TestStats:
    def test_summary_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3
        assert summary.median == 3
        assert summary.minimum == 1
        assert summary.maximum == 5

    def test_percentile_interpolation(self):
        assert percentile([0, 10], 0.5) == 5
        assert percentile([1, 2, 3, 4], 0.0) == 1
        assert percentile([1, 2, 3, 4], 1.0) == 4

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean_trials(self):
        assert geometric_mean_trials([1, 2, 3]) == 2.0

    def test_ci_width_shrinks(self):
        small = summarize([1.0, 2.0, 3.0] * 3)
        large = summarize([1.0, 2.0, 3.0] * 30)
        assert large.ci95_half_width() < small.ci95_half_width()


class TestRender:
    def _store(self):
        store = DagStore(4)
        for source in range(3):
            store.add(
                Vertex(1, source, Block(source, 1), frozenset({0, 1, 2, 3}))
            )
        store.add(
            Vertex(
                2, 0, Block(0, 2), frozenset({0, 1, 2}), frozenset({Ref(3, 0)})
            )
        )
        return store

    def test_render_contains_vertices_and_gaps(self):
        text = render_dag(self._store(), n=4)
        assert "p0" in text and "p3" in text
        assert "v4" in text  # strong edge count
        assert "." in text  # missing slot marker

    def test_render_weak_edge_marker(self):
        text = render_dag(self._store(), n=4)
        assert "~1" in text

    def test_render_highlight(self):
        text = render_dag(self._store(), highlight={Ref(0, 1)}, n=4)
        assert "*" in text

    def test_render_empty(self):
        assert render_dag(DagStore(4)) == "(empty DAG)"

    def test_describe_edges(self):
        store = self._store()
        line = describe_edges(store, Ref(0, 2))
        assert "strong" in line and "weak" in line
        assert describe_edges(store, Ref(9, 9)).endswith("not in this DAG")
