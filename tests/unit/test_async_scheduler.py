"""AsyncScheduler adapter (the runtime's clock surface)."""

import asyncio

from repro.runtime.transport import AsyncScheduler


def run(coro):
    return asyncio.run(coro)


class TestAsyncScheduler:
    def test_now_starts_near_zero_and_advances(self):
        async def main():
            sched = AsyncScheduler(asyncio.get_running_loop())
            first = sched.now
            await asyncio.sleep(0.05)
            return first, sched.now

        first, later = run(main())
        assert first < 0.01
        assert later >= first + 0.04

    def test_call_later_fires(self):
        async def main():
            sched = AsyncScheduler(asyncio.get_running_loop())
            fired = []
            sched.call_later(0.02, lambda: fired.append(sched.now))
            await asyncio.sleep(0.1)
            return fired

        fired = run(main())
        assert len(fired) == 1
        assert fired[0] >= 0.015

    def test_cancel_prevents_firing(self):
        async def main():
            sched = AsyncScheduler(asyncio.get_running_loop())
            fired = []
            handle = sched.call_later(0.02, lambda: fired.append(1))
            sched.cancel(handle)
            await asyncio.sleep(0.06)
            return fired

        assert run(main()) == []

    def test_cancel_after_fire_is_noop(self):
        async def main():
            sched = AsyncScheduler(asyncio.get_running_loop())
            fired = []
            handle = sched.call_later(0.01, lambda: fired.append(1))
            await asyncio.sleep(0.05)
            sched.cancel(handle)  # already fired; must not raise
            return fired

        assert run(main()) == [1]

    def test_handles_unique(self):
        async def main():
            sched = AsyncScheduler(asyncio.get_running_loop())
            handles = [sched.call_later(0.01, lambda: None) for _ in range(5)]
            await asyncio.sleep(0.05)
            return handles

        handles = run(main())
        assert len(set(handles)) == 5
