"""Single-shot baseline instances: VABA, Dumbo, HoneyBadger, dispersal."""

from repro.baselines.dispersal import AvidDispersal
from repro.baselines.dumbo import DispersalRef, DumboSlot
from repro.baselines.honeybadger import HoneyBadgerSlot
from repro.baselines.vaba import VabaSlot
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.mempool.blocks import Block
from repro.sim.adversary import UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class SlotHost(Process):
    """Hosts one single-shot instance of any baseline protocol."""

    def __init__(self, pid, network, factory):
        super().__init__(pid, network)
        self.decided = None
        self.instance = factory(self)

    def record(self, value):
        self.decided = value

    def on_message(self, src, message):
        self.instance.handle(src, message)


def build(factory_for, n=4, seed=0):
    config = SystemConfig(n=n, seed=seed)
    sched = Scheduler()
    network = Network(sched, config, UniformDelay(derive_rng(seed, "d")))
    hosts = [SlotHost(pid, network, factory_for) for pid in range(n)]
    return sched, hosts, config


def elect(seed):
    return lambda view: derive_rng(seed, "elect", view).randrange(4)


class TestVabaSlot:
    def test_agreement_and_termination(self):
        for seed in range(6):
            sched, hosts, config = build(
                lambda host, s=seed: VabaSlot(
                    host.pid, host.config, elect(s), host.send, host.broadcast,
                    on_decide=host.record,
                ),
                seed=seed,
            )
            for host in hosts:
                value = Block(host.pid, 0, (b"v%d" % host.pid,))
                sched.call_at(0.0, lambda h=host, v=value: h.instance.propose(v))
            sched.run(max_events=100_000)
            decisions = {host.decided.digest for host in hosts}
            assert len(decisions) == 1

    def test_decision_is_a_proposed_value(self):
        sched, hosts, _config = build(
            lambda host: VabaSlot(
                host.pid, host.config, elect(1), host.send, host.broadcast,
                on_decide=host.record,
            ),
            seed=1,
        )
        proposals = {}
        for host in hosts:
            value = Block(host.pid, 0, (b"v%d" % host.pid,))
            proposals[host.pid] = value.digest
            sched.call_at(0.0, lambda h=host, v=value: h.instance.propose(v))
        sched.run(max_events=100_000)
        assert hosts[0].decided.digest in proposals.values()

    def test_views_used_expected_small(self):
        views = []
        for seed in range(8):
            sched, hosts, _config = build(
                lambda host, s=seed: VabaSlot(
                    host.pid, host.config, elect(s), host.send, host.broadcast,
                    on_decide=host.record,
                ),
                seed=seed,
            )
            for host in hosts:
                value = Block(host.pid, 0, (b"x",))
                sched.call_at(0.0, lambda h=host, v=value: h.instance.propose(v))
            sched.run(max_events=100_000)
            views.append(max(host.instance.views_used for host in hosts))
        assert sum(views) / len(views) < 4  # expected constant (~3/2)


class TestDispersal:
    def test_disperse_retrieve_roundtrip(self):
        sched, hosts, _config = build(
            lambda host: AvidDispersal(
                host.pid, host.config, host.send, host.broadcast
            )
        )
        data = b"batch-payload" * 20
        root = hosts[0].instance.disperse(data)
        sched.run()
        assert all(host.instance.is_complete(root) for host in hosts)
        results = []
        hosts[2].instance.retrieve(root, len(data), results.append)
        sched.run()
        assert results == [data]

    def test_retrieve_before_store_parks_fetch(self):
        sched, hosts, _config = build(
            lambda host: AvidDispersal(
                host.pid, host.config, host.send, host.broadcast
            )
        )
        data = b"some data"
        # Host 1 asks for a root nobody has yet; then host 0 disperses it.
        from repro.codes.merkle import MerkleTree
        from repro.codes.reed_solomon import rs_encode

        root = MerkleTree(rs_encode(data, 2, 4)).root
        results = []
        hosts[1].instance.retrieve(root, len(data), results.append)
        sched.run()
        assert results == []
        assert hosts[0].instance.disperse(data) == root
        sched.run()
        assert results == [data]

    def test_retrieval_callbacks_coalesce(self):
        sched, hosts, _config = build(
            lambda host: AvidDispersal(
                host.pid, host.config, host.send, host.broadcast
            )
        )
        data = b"z" * 40
        root = hosts[0].instance.disperse(data)
        sched.run()
        results = []
        hosts[3].instance.retrieve(root, len(data), results.append)
        hosts[3].instance.retrieve(root, len(data), results.append)
        sched.run()
        assert results == [data, data]
        # Cached retrieval resolves synchronously.
        hosts[3].instance.retrieve(root, len(data), results.append)
        assert results[-1] == data


class TestDumboSlot:
    def test_agreement(self):
        for seed in range(4):
            sched, hosts, _config = build(
                lambda host, s=seed: DumboSlot(
                    host.pid, host.config, elect(s), host.send, host.broadcast,
                    on_decide=host.record,
                ),
                seed=seed,
            )
            for host in hosts:
                value = Block(host.pid, 0, (b"batch-%d" % host.pid * 10,))
                sched.call_at(0.0, lambda h=host, v=value: h.instance.propose(v))
            sched.run(max_events=200_000)
            decisions = {tuple(b.digest for b in host.decided) for host in hosts}
            assert len(decisions) == 1

    def test_ref_codec_roundtrip(self):
        ref = DispersalRef(3, b"\x07" * 32, 12345)
        assert DispersalRef.from_bytes(ref.to_bytes()) == ref


class TestHoneyBadgerSlot:
    def test_agreement_and_inclusion(self):
        for seed in range(4):
            sched, hosts, config = build(
                lambda host, s=seed: HoneyBadgerSlot(
                    host.pid,
                    host.config,
                    coin=lambda j, r, s=s: derive_rng(s, "c", j, r).randrange(2),
                    send=host.send,
                    broadcast=host.broadcast,
                    on_decide=host.record,
                ),
                seed=seed,
            )
            for host in hosts:
                value = Block(host.pid, 0, (b"hb-%d" % host.pid,))
                sched.call_at(0.0, lambda h=host, v=value: h.instance.propose(v))
            sched.run(max_events=400_000)
            decisions = {
                tuple(b.proposer for b in host.decided) for host in hosts
            }
            assert len(decisions) == 1
            (included,) = decisions
            assert len(included) >= config.quorum  # >= n - f batches make it
