"""Block codec and the blocksToPropose queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import WireFormatError
from repro.mempool.blocks import Block, BlockSource, TransactionGenerator


class TestBlockCodec:
    def test_roundtrip(self):
        block = Block(2, 7, (b"tx1", b"tx2"))
        decoded, offset = Block.from_bytes(block.to_bytes())
        assert decoded == block
        assert offset == len(block.to_bytes())

    def test_empty_block(self):
        block = Block(0, 0)
        decoded, _ = Block.from_bytes(block.to_bytes())
        assert decoded == block
        assert len(decoded) == 0

    def test_truncated_rejected(self):
        data = Block(1, 1, (b"abcdef",)).to_bytes()
        with pytest.raises(WireFormatError):
            Block.from_bytes(data[:-2])

    def test_offset_decoding(self):
        a = Block(1, 1, (b"a",))
        b = Block(2, 2, (b"bb",))
        data = a.to_bytes() + b.to_bytes()
        first, offset = Block.from_bytes(data)
        second, end = Block.from_bytes(data, offset)
        assert (first, second) == (a, b)
        assert end == len(data)

    @given(
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=2**63),
        st.lists(st.binary(max_size=40), max_size=8),
    )
    def test_roundtrip_property(self, proposer, sequence, txs):
        block = Block(proposer, sequence, tuple(txs))
        decoded, _ = Block.from_bytes(block.to_bytes())
        assert decoded == block

    def test_digest_stable_and_distinct(self):
        a = Block(1, 1, (b"x",))
        assert a.digest == Block(1, 1, (b"x",)).digest
        assert a.digest != Block(1, 1, (b"y",)).digest


class TestTransactionGenerator:
    def test_unique_and_sized(self):
        gen = TransactionGenerator(seed=1, proposer=2, tx_bytes=64)
        txs = [gen.next_transaction() for _ in range(100)]
        assert len(set(txs)) == 100
        assert all(len(tx) == 64 for tx in txs)

    def test_deterministic(self):
        a = TransactionGenerator(seed=1, proposer=2)
        b = TransactionGenerator(seed=1, proposer=2)
        assert a.next_transaction() == b.next_transaction()

    def test_proposers_independent(self):
        a = TransactionGenerator(seed=1, proposer=0)
        b = TransactionGenerator(seed=1, proposer=1)
        assert a.next_transaction() != b.next_transaction()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            TransactionGenerator(seed=1, proposer=0, tx_bytes=0)


class TestBlockSource:
    def test_explicit_blocks_first(self):
        source = BlockSource(0, TransactionGenerator(1, 0), batch_size=2)
        explicit = source.enqueue_transactions(b"urgent")
        first = source.dequeue()
        assert first == explicit
        generated = source.dequeue()
        assert len(generated) == 2

    def test_generator_never_exhausts(self):
        source = BlockSource(0, TransactionGenerator(1, 0))
        assert not source.empty
        for _ in range(50):
            assert source.dequeue() is not None

    def test_without_generator_stalls(self):
        source = BlockSource(0)
        assert source.empty
        assert source.dequeue() is None
        source.enqueue_transactions(b"tx")
        assert not source.empty
        assert source.dequeue() is not None
        assert source.dequeue() is None

    def test_sequences_increase(self):
        source = BlockSource(0, TransactionGenerator(1, 0))
        seqs = [source.dequeue().sequence for _ in range(5)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_drain_scales_linearly(self):
        # Regression guard for the O(n) list.pop(0) dequeue: draining a
        # deep explicit queue must cost O(1) per block. With the old
        # quadratic behavior the large drain shuffles ~200M list slots
        # and blows far past the absolute bound; with deque.popleft it
        # finishes in milliseconds.
        import time

        def drain_seconds(count):
            source = BlockSource(0)
            for index in range(count):
                source.enqueue_transactions(b"%d" % index)
            start = time.perf_counter()
            while source.dequeue() is not None:
                pass
            return time.perf_counter() - start

        small = drain_seconds(2_000)
        large = drain_seconds(20_000)
        assert large < max(40 * small, 0.5)
