"""Reliable broadcast instantiations: agreement, integrity, validity.

Each protocol is run over the real simulated network with a small harness
process that owns one broadcast endpoint per node.
"""

import pytest

from repro.broadcast.avid import AvidBroadcast
from repro.broadcast.bracha import BrachaBroadcast, BrachaMessage
from repro.broadcast.gossip import GossipBroadcast
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.dag.vertex import Vertex
from repro.mempool.blocks import Block
from repro.sim.adversary import UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class BroadcastHost(Process):
    """Minimal process hosting a single reliable-broadcast endpoint."""

    def __init__(self, pid, network, protocol, **kwargs):
        super().__init__(pid, network)
        self.delivered = []
        self._rbc = protocol(
            pid,
            network.config,
            send=self.send,
            broadcast=self.broadcast,
            deliver=lambda payload, r, src: self.delivered.append((payload, r, src)),
            **kwargs,
        )

    def on_message(self, src, message):
        self._rbc.handle(src, message)

    def r_bcast(self, payload, round_):
        self._rbc.r_bcast(payload, round_)


def payload(source=0, round_=1, txs=(b"tx",)):
    return Vertex(round_, source, Block(source, round_, tuple(txs)), frozenset({0, 1, 2}))


def build(protocol, n=4, seed=0, **kwargs):
    config = SystemConfig(n=n, seed=seed)
    sched = Scheduler()
    network = Network(sched, config, UniformDelay(derive_rng(seed, "d")))
    if protocol is AvidBroadcast:
        kwargs.setdefault("decode_payload", Vertex.from_bytes)
    hosts = [BroadcastHost(pid, network, protocol, **kwargs) for pid in range(n)]
    return sched, network, hosts


PROTOCOLS = [BrachaBroadcast, GossipBroadcast, AvidBroadcast]


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestCommonProperties:
    def test_validity_all_deliver(self, protocol):
        sched, _net, hosts = build(protocol)
        hosts[0].r_bcast(payload(), 1)
        sched.run()
        for host in hosts:
            assert len(host.delivered) == 1
            delivered, round_, source = host.delivered[0]
            assert (round_, source) == (1, 0)
            assert delivered.block == payload().block

    def test_agreement_on_content(self, protocol):
        sched, _net, hosts = build(protocol, seed=5)
        hosts[2].r_bcast(payload(source=2, txs=(b"a", b"b")), 3)
        sched.run()
        digests = {host.delivered[0][0].digest for host in hosts}
        assert len(digests) == 1

    def test_integrity_single_delivery_per_slot(self, protocol):
        sched, _net, hosts = build(protocol, seed=6)
        hosts[1].r_bcast(payload(source=1), 1)
        sched.run()
        for host in hosts:
            assert len(host.delivered) == 1

    def test_concurrent_broadcasts_all_deliver(self, protocol):
        sched, _net, hosts = build(protocol, seed=7)
        for pid, host in enumerate(hosts):
            host.r_bcast(payload(source=pid), 1)
        sched.run()
        for host in hosts:
            assert len(host.delivered) == len(hosts)
            assert {src for _, _, src in host.delivered} == {0, 1, 2, 3}

    def test_multiple_rounds_from_same_source(self, protocol):
        sched, _net, hosts = build(protocol, seed=8)
        hosts[0].r_bcast(payload(round_=1), 1)
        hosts[0].r_bcast(payload(round_=2), 2)
        sched.run()
        for host in hosts:
            rounds = sorted(r for _, r, _ in host.delivered)
            assert rounds == [1, 2]


class TestBrachaSpecifics:
    def test_equivocation_delivers_at_most_one(self):
        sched, _net, hosts = build(BrachaBroadcast, seed=9)
        left = payload(txs=(b"left",))
        right = payload(txs=(b"right",))
        # Byzantine sender 0 sends conflicting SENDs to the two halves.
        for dst in range(4):
            chosen = left if dst < 2 else right
            hosts[0].send(dst, BrachaMessage("SEND", 0, 1, chosen))
        sched.run()
        delivered_digests = set()
        for host in hosts:
            for vertex, _, _ in host.delivered:
                delivered_digests.add(vertex.digest)
        # With a split 2/2 neither side reaches the 2f+1 echo quorum.
        assert len(delivered_digests) <= 1

    def test_forged_send_from_non_source_ignored(self):
        sched, _net, hosts = build(BrachaBroadcast, seed=10)
        # Process 1 claims a SEND whose source field says 0: must be ignored
        # because the network authenticates the actual sender.
        hosts[1].send(2, BrachaMessage("SEND", 0, 1, payload()))
        sched.run()
        assert all(host.delivered == [] for host in hosts)

    def test_ready_amplification_from_f_plus_1(self):
        """A host that saw no ECHO quorum still delivers via f+1 READYs."""
        sched, _net, hosts = build(BrachaBroadcast, seed=11)
        vertex = payload()
        for sender in (1, 2):
            for dst in range(4):
                hosts[sender].send(dst, BrachaMessage("READY", 0, 1, vertex))
        sched.run()
        # 2 READYs (= f+1) make everyone READY; 2f+1=3 READYs then deliver.
        for host in hosts:
            assert len(host.delivered) == 1


class TestAvidSpecifics:
    def test_forged_fragment_rejected(self):
        sched, _net, hosts = build(AvidBroadcast, seed=12)
        from repro.broadcast.avid import AvidMessage

        bogus = AvidMessage("ECHO", 0, 1, b"\x00" * 32, 1, b"junk", (), 4)
        hosts[1].send(2, bogus)
        sched.run()
        assert all(host.delivered == [] for host in hosts)

    def test_large_payload_roundtrip(self):
        sched, _net, hosts = build(AvidBroadcast, seed=13)
        big = payload(txs=tuple(bytes([i]) * 100 for i in range(20)))
        hosts[0].r_bcast(big, 1)
        sched.run()
        for host in hosts:
            assert host.delivered[0][0] == big

    def test_fragments_smaller_than_payload(self):
        """The economical property: per-process fragments ~ |m|/(f+1)."""
        from repro.codes.reed_solomon import rs_encode

        data = payload(txs=(b"x" * 900,)).to_bytes()
        fragments = rs_encode(data, 2, 4)  # k = f+1 = 2 for n = 4
        assert all(len(f) <= len(data) // 2 + 2 for f in fragments)


class TestGossipSpecifics:
    def test_small_system_samples_cover_everyone(self):
        sched, _net, hosts = build(GossipBroadcast, seed=14, sample_factor=10.0)
        hosts[3].r_bcast(payload(source=3), 1)
        sched.run()
        assert all(len(host.delivered) == 1 for host in hosts)

    def test_larger_system_delivers_whp(self):
        sched, _net, hosts = build(GossipBroadcast, n=7, seed=15)
        hosts[0].r_bcast(payload(), 1)
        sched.run()
        delivered = sum(1 for host in hosts if host.delivered)
        assert delivered == 7  # with 4·ln(n) samples failure is negligible
