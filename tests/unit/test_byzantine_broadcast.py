"""Adversarial broadcast behaviours beyond simple equivocation.

These tests drive the exact mechanisms that make the broadcasts *Byzantine*
reliable: AVID's re-encode verification against inconsistent encodings,
Bracha's per-digest quorums under vote splitting, gossip's subscription
replay, and the dispersal layer's fragment authentication.
"""

from repro.broadcast.avid import AvidBroadcast, AvidMessage
from repro.broadcast.bracha import BrachaBroadcast, BrachaMessage
from repro.broadcast.gossip import GossipBroadcast, GossipSubscribe
from repro.codes.merkle import MerkleTree
from repro.codes.reed_solomon import rs_encode
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.dag.vertex import Vertex
from repro.mempool.blocks import Block
from repro.sim.adversary import UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class Host(Process):
    def __init__(self, pid, network, protocol, **kwargs):
        super().__init__(pid, network)
        self.delivered = []
        if protocol is AvidBroadcast:
            kwargs.setdefault("decode_payload", Vertex.from_bytes)
        self.rbc = protocol(
            pid,
            network.config,
            send=self.send,
            broadcast=self.broadcast,
            deliver=lambda p, r, s: self.delivered.append((p, r, s)),
            **kwargs,
        )

    def on_message(self, src, message):
        self.rbc.handle(src, message)


def build(protocol, n=4, seed=0, **kwargs):
    config = SystemConfig(n=n, seed=seed)
    sched = Scheduler()
    network = Network(sched, config, UniformDelay(derive_rng(seed, "d")))
    hosts = [Host(pid, network, protocol, **kwargs) for pid in range(n)]
    return sched, hosts


def vertex(txs=(b"tx",)):
    return Vertex(1, 0, Block(0, 1, tuple(txs)), frozenset({0, 1, 2}))


class TestAvidVerifiability:
    def test_inconsistent_encoding_rejected_by_everyone(self):
        """A Byzantine sender disperses fragments that authenticate against
        the root but do NOT come from a consistent Reed-Solomon encoding.

        AVID's re-encode check must make every correct process reject the
        dispersal identically (nobody delivers anything)."""
        sched, hosts = build(AvidBroadcast, seed=20)
        config = hosts[0].config
        k = config.small_quorum
        good = rs_encode(vertex().to_bytes(), k, config.n)
        # Corrupt one parity fragment, then commit to the *corrupted* set:
        # every fragment verifies against the Merkle root, but decoding from
        # different subsets yields different payloads.
        bad = list(good)
        bad[3] = bytes(b ^ 0xFF for b in bad[3])
        tree = MerkleTree(bad)
        data_len = len(vertex().to_bytes())
        for j in range(config.n):
            hosts[0].send(
                j,
                AvidMessage(
                    "VAL", 0, 1, tree.root, j, bad[j], tuple(tree.proof(j)), data_len
                ),
            )
        sched.run()
        for host in hosts:
            assert host.delivered == [], "inconsistent dispersal was delivered"

    def test_consistent_redispersal_still_works(self):
        """Sanity: the same flow with a consistent encoding delivers."""
        sched, hosts = build(AvidBroadcast, seed=21)
        hosts[0].rbc.r_bcast(vertex(), 1)
        sched.run()
        assert all(len(host.delivered) == 1 for host in hosts)

    def test_wrong_index_fragment_ignored(self):
        sched, hosts = build(AvidBroadcast, seed=22)
        config = hosts[0].config
        data = vertex().to_bytes()
        fragments = rs_encode(data, config.small_quorum, config.n)
        tree = MerkleTree(fragments)
        # VAL claiming to be for process 2 but sent to process 1.
        hosts[0].send(
            1,
            AvidMessage("VAL", 0, 1, tree.root, 2, fragments[2], tuple(tree.proof(2)), len(data)),
        )
        sched.run()
        assert all(host.delivered == [] for host in hosts)


class TestBrachaVoteSplitting:
    def test_byzantine_echoes_cannot_fake_quorum(self):
        """f Byzantine echoes for a payload nobody sent don't reach quorum."""
        sched, hosts = build(BrachaBroadcast, seed=23)
        phantom = vertex(txs=(b"phantom",))
        for dst in range(4):
            hosts[3].send(dst, BrachaMessage("ECHO", 0, 1, phantom))
        sched.run()
        assert all(host.delivered == [] for host in hosts)

    def test_byzantine_ready_alone_insufficient(self):
        sched, hosts = build(BrachaBroadcast, seed=24)
        phantom = vertex(txs=(b"phantom",))
        for dst in range(4):
            hosts[3].send(dst, BrachaMessage("READY", 0, 1, phantom))
        sched.run()
        # One READY (f = 1) is below the f+1 amplification threshold.
        assert all(host.delivered == [] for host in hosts)

    def test_mixed_split_converges_to_at_most_one(self):
        """Sender splits SEND 3/1; the 3-side can deliver, never both."""
        sched, hosts = build(BrachaBroadcast, seed=25)
        a, b = vertex(txs=(b"a",)), vertex(txs=(b"b",))
        for dst in range(3):
            hosts[0].send(dst, BrachaMessage("SEND", 0, 1, a))
        hosts[0].send(3, BrachaMessage("SEND", 0, 1, b))
        sched.run()
        digests = {p.digest for host in hosts for (p, _, _) in host.delivered}
        assert len(digests) <= 1
        if digests:
            assert digests == {a.digest}


class TestGossipSubscriptions:
    def test_late_subscription_replay(self):
        """A peer that subscribes after echoes were published still gets them."""
        sched, hosts = build(GossipBroadcast, seed=26, sample_factor=10.0)
        hosts[0].rbc.r_bcast(vertex(), 1)
        sched.run()
        # Everyone delivered despite subscription messages racing the
        # broadcast — the replay path covered the stragglers.
        assert all(len(host.delivered) == 1 for host in hosts)

    def test_unknown_channel_subscription_ignored(self):
        sched, hosts = build(GossipBroadcast, seed=27)
        hosts[1].send(0, GossipSubscribe("bogus-channel"))
        sched.run()  # must not raise
        assert hosts[0].delivered == []
