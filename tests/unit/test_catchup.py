"""Catch-up protocol: codec frames, the serve side, and the apply side."""

from repro.codec import decode_message, encode_message
from repro.codec.frames import CatchupRequest, CatchupVertices
from repro.common.config import SystemConfig
from repro.core.harness import DagRiderDeployment
from repro.core.node import CATCHUP_CHUNK


def ordered_deployment(seed=11, count=12):
    dep = DagRiderDeployment(SystemConfig(n=4, seed=seed))
    assert dep.run_until_ordered(count, max_events=600_000)
    return dep


def capture_sends(node):
    sent = []
    node.send = lambda dst, message: sent.append((dst, message))
    return sent


class TestCatchupCodec:
    def test_request_round_trips(self):
        frame = CatchupRequest(from_round=42)
        assert decode_message(encode_message(frame)) == frame

    def test_vertices_round_trip(self):
        frame = CatchupVertices((b"vertex-bytes", b"\x00" * 7), done=False)
        assert decode_message(encode_message(frame)) == frame

    def test_empty_done_frame_round_trips(self):
        frame = CatchupVertices((), done=True)
        assert decode_message(encode_message(frame)) == frame


class TestServeCatchup:
    def test_serves_whole_dag_in_chunks_last_done(self):
        dep = ordered_deployment()
        node = dep.nodes[0]
        sent = capture_sends(node)
        node._serve_catchup(2, CatchupRequest(from_round=1))
        assert sent and all(dst == 2 for dst, _ in sent)
        chunks = [message for _, message in sent]
        assert all(isinstance(chunk, CatchupVertices) for chunk in chunks)
        assert [chunk.done for chunk in chunks] == [False] * (len(chunks) - 1) + [True]
        assert all(len(chunk.vertices) <= CATCHUP_CHUNK for chunk in chunks)
        served = sum(len(chunk.vertices) for chunk in chunks)
        in_store = sum(1 for vertex in node.store.vertices() if vertex.round >= 1)
        assert served == in_store

    def test_from_round_bounds_the_suffix(self):
        dep = ordered_deployment()
        node = dep.nodes[0]
        sent = capture_sends(node)
        node._serve_catchup(1, CatchupRequest(from_round=3))
        from repro.dag.vertex import Vertex

        served = [
            Vertex.from_bytes(data)
            for _, chunk in sent
            for data in chunk.vertices
        ]
        assert served and all(vertex.round >= 3 for vertex in served)

    def test_empty_store_still_answers_done(self):
        dep = DagRiderDeployment(SystemConfig(n=4, seed=5))
        node = dep.nodes[0]
        sent = capture_sends(node)
        node._serve_catchup(3, CatchupRequest(from_round=1))
        assert len(sent) == 1
        _dst, chunk = sent[0]
        assert chunk.vertices == () and chunk.done


class TestApplyCatchup:
    def serve_chunks(self, seed=11):
        dep = ordered_deployment(seed=seed)
        node = dep.nodes[0]
        sent = capture_sends(node)
        node._serve_catchup(1, CatchupRequest(from_round=1))
        return [message for _, message in sent]

    def fresh_node(self, seed=11):
        dep = DagRiderDeployment(SystemConfig(n=4, seed=seed))
        return dep.nodes[1]

    def test_applies_served_vertices_through_the_builder(self):
        chunks = self.serve_chunks()
        node = self.fresh_node()
        node._catchup_pending = {0, 2}
        before = sum(1 for _ in node.store.vertices())
        for chunk in chunks:
            node._apply_catchup(0, chunk)
        after = sum(1 for vertex in node.store.vertices() if vertex.round >= 1)
        assert after > 0 and after >= before
        # The donor finished; the other pending peer is still awaited.
        assert node._catchup_pending == {2}
        for chunk in chunks:
            node._apply_catchup(2, chunk)
        assert node._catchup_pending == set()

    def test_unsolicited_chunks_ignored(self):
        chunks = self.serve_chunks()
        node = self.fresh_node()
        assert node._catchup_pending == set()
        for chunk in chunks:
            node._apply_catchup(0, chunk)
        assert sum(1 for vertex in node.store.vertices() if vertex.round >= 1) == 0

    def test_corrupt_payload_skipped_rest_applied(self):
        chunks = self.serve_chunks()
        node = self.fresh_node()
        node._catchup_pending = {0}
        poisoned = CatchupVertices(
            (b"\xff" * 9,) + chunks[0].vertices, done=chunks[0].done
        )
        node._apply_catchup(0, poisoned)
        for chunk in chunks[1:]:
            node._apply_catchup(0, chunk)
        assert sum(1 for vertex in node.store.vertices() if vertex.round >= 1) > 0
        assert node._catchup_pending == set()

    def test_duplicates_are_harmless(self):
        chunks = self.serve_chunks()
        node = self.fresh_node()
        node._catchup_pending = {0, 2}
        for chunk in chunks:
            node._apply_catchup(0, chunk)
        count = sum(1 for vertex in node.store.vertices() if vertex.round >= 1)
        for chunk in chunks:  # second donor serves the same suffix
            node._apply_catchup(2, chunk)
        again = sum(1 for vertex in node.store.vertices() if vertex.round >= 1)
        assert again == count
