"""Unit tests for cross-host causal trace stitching (``repro.obs.causal``).

Synthetic traces pin down the attribution rules (deliveries belong to the
most recent *committed* ``wave_leader`` and are stamped by that wave's
``commit`` event, matching ``repro.core``'s emit order) and the clock-skew
estimator; a recorded 4-node simulator trace then checks the stitcher
covers every delivered vertex end to end.
"""

import json

import pytest

from repro.obs import EventBus
from repro.obs.causal import EDGES, edge_stats, percentile, stitch
from repro.perf.cells import smoke_cells
from repro.perf.runner import run_cell_traced


class TestPercentile:
    def test_nearest_rank_on_1_to_100(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.90) == 90.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.00) == 100.0

    def test_small_samples(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0
        assert percentile([3.0, 1.0], 0.50) == 1.0
        assert percentile([3.0, 1.0], 0.90) == 3.0

    def test_edge_stats_summary(self):
        stats = edge_stats([2.0, 1.0, 3.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.p50 == 2.0
        assert stats.max == 3.0
        assert edge_stats([]).count == 0


def _emit_vertex(bus, round_, source, create_at, deliver_at):
    """One vertex's full pipeline on hosts 0 and 1 (single shared clock).

    ``deliver_at[pid]`` is the a_deliver time at each host; the commit
    pipeline events (election, delivery, commit record) follow the emit
    order of ``repro.core``: leader -> a_deliver -> commit.
    """
    bus.emit_at(create_at, source, "vertex_created", round=round_, weak=0)
    for pid, at in deliver_at.items():
        bus.emit_at(at - 0.9, pid, "r_deliver", round=round_, source=source)
        bus.emit_at(at - 0.8, pid, "vertex_added", round=round_, source=source, weak=0)
        bus.emit_at(
            at - 0.2, pid, "wave_leader",
            wave=1, leader=source, support=3, committed=True,
        )
        bus.emit_at(at, pid, "a_deliver", round=round_, source=source)
        bus.emit_at(at + 0.1, pid, "commit", wave=1, leaders=1, delivered=1)


class TestAttribution:
    def test_single_vertex_chain_and_edges(self):
        bus = EventBus()
        _emit_vertex(bus, 1, 0, create_at=0.0, deliver_at={0: 1.0, 1: 1.0})
        report = stitch(bus.events)

        assert report.hosts == [0, 1]
        assert report.delivered_vertices == 1
        assert report.stitched_chains == 1
        assert report.coverage == 1.0
        chain = report.chains[(1, 0)]
        assert chain.created == 0.0
        assert chain.deliver == {0: 1.0, 1: 1.0}
        assert chain.commit == {0: pytest.approx(1.1), 1: pytest.approx(1.1)}
        assert chain.commit_wave == {0: 1, 1: 1}
        assert chain.leader == {0: pytest.approx(0.8), 1: pytest.approx(0.8)}
        for name in EDGES:
            assert report.edges[name].count == 2 if "create" not in name else True
        assert report.edges["leader->deliver"].p50 == pytest.approx(0.2)
        assert report.edges["deliver->commit"].p50 == pytest.approx(0.1)
        assert report.edges["r_deliver->insert"].p50 == pytest.approx(0.1)

    def test_delivery_belongs_to_committed_leader_only(self):
        bus = EventBus()
        # An uncommitted election must not claim the delivery that follows.
        bus.emit_at(0.5, 0, "wave_leader", wave=1, leader=2, support=1, committed=False)
        bus.emit_at(1.0, 0, "a_deliver", round=1, source=2)
        report = stitch(bus.events)
        chain = report.chains[(1, 2)]
        assert chain.deliver == {0: 1.0}
        assert chain.commit == {}
        assert chain.leader == {}
        assert report.stitched_chains == 1  # still a (partial) chain

    def test_batched_waves_commit_in_emit_order(self):
        bus = EventBus()
        # One wave_ready can commit two chained waves: both walks deliver
        # first (leader W1, delivers; leader W2, delivers), then both
        # commit records are emitted. Each delivery must be stamped with
        # its own wave's commit time.
        bus.emit_at(1.0, 0, "wave_leader", wave=1, leader=0, support=3, committed=True)
        bus.emit_at(1.0, 0, "a_deliver", round=1, source=0)
        bus.emit_at(1.0, 0, "wave_leader", wave=2, leader=1, support=3, committed=True)
        bus.emit_at(1.0, 0, "a_deliver", round=5, source=1)
        bus.emit_at(2.0, 0, "commit", wave=1, leaders=1, delivered=1)
        bus.emit_at(3.0, 0, "commit", wave=2, leaders=1, delivered=1)
        report = stitch(bus.events)
        assert report.chains[(1, 0)].commit == {0: 2.0}
        assert report.chains[(1, 0)].commit_wave == {0: 1}
        assert report.chains[(5, 1)].commit == {0: 3.0}
        assert report.chains[(5, 1)].commit_wave == {0: 2}

    def test_duplicate_deliveries_keep_first(self):
        bus = EventBus()
        bus.emit_at(1.0, 0, "a_deliver", round=1, source=0)
        bus.emit_at(9.0, 0, "a_deliver", round=1, source=0)
        report = stitch(bus.events)
        assert report.chains[(1, 0)].deliver == {0: 1.0}


class TestSkewEstimation:
    def test_recovers_known_clock_shift(self):
        # Host 1's clock runs 5 s ahead of host 0's for the same physical
        # instants. The estimator sees only per-host stamps; it should
        # recover the 5 s spread and cancel it from cross-host edges.
        shift = 5.0
        bus = EventBus()
        for index in range(8):
            round_ = index + 1
            base = float(index)
            _emit_vertex(
                bus, round_, 0,
                create_at=base,
                deliver_at={0: base + 1.0, 1: base + 1.0 + shift},
            )
        report = stitch(bus.events)
        offsets = report.offsets
        assert offsets[1] - offsets[0] == pytest.approx(shift)
        # Corrected end-to-end latency is the same 1 s on both hosts.
        e2e = report.edges["create->deliver"]
        assert e2e.count == 16
        assert e2e.p50 == pytest.approx(1.0)
        assert e2e.max == pytest.approx(1.0)
        # The raw (uncorrected) spread still shows up in the skew report.
        assert report.skew_spread().p50 == pytest.approx(shift)

    def test_single_clock_trace_estimates_zero(self):
        bus = EventBus()
        for index in range(4):
            _emit_vertex(
                bus, index + 1, 0,
                create_at=float(index),
                deliver_at={0: index + 1.0, 1: index + 1.0},
            )
        report = stitch(bus.events)
        assert all(abs(offset) < 1e-9 for offset in report.offsets.values())


class TestRecordedTrace:
    """The satellite check: stitch a recorded 4-node simulator trace."""

    @pytest.fixture(scope="class")
    def report_and_events(self):
        cell = smoke_cells(base_seed=1)[0]  # bracha-n4-b4
        _, observability = run_cell_traced(cell)
        events = observability.bus.events
        return stitch(events), events

    def test_covers_every_delivered_vertex(self, report_and_events):
        report, events = report_and_events
        delivered_keys = {
            (event.get("round"), event.get("source"))
            for event in events
            if event.kind == "a_deliver"
        }
        assert delivered_keys
        assert report.coverage == 1.0
        assert report.delivered_vertices == len(delivered_keys)
        assert report.stitched_chains == len(delivered_keys)
        for key in delivered_keys:
            assert report.chains[key].deliver

    def test_every_delivery_is_fully_attributed(self, report_and_events):
        report, _ = report_and_events
        for chain in report.chains.values():
            if not chain.deliver:
                continue
            # Each delivering host also has the committing wave's election
            # and commit record attributed — nothing dangles.
            assert set(chain.commit) == set(chain.deliver)
            assert set(chain.leader) == set(chain.deliver)
            assert set(chain.commit_wave) == set(chain.deliver)

    def test_all_pipeline_edges_have_samples(self, report_and_events):
        report, _ = report_and_events
        for name in EDGES:
            assert report.edges[name].count > 0, name
        # Simulator time never runs backwards along within-host edges.
        for name in ("r_deliver->insert", "insert->leader", "deliver->commit"):
            stats = report.edges[name]
            assert stats.max >= stats.p50 >= 0.0

    def test_single_clock_bounds_offsets_by_delivery_spread(self, report_and_events):
        report, _ = report_and_events
        assert report.hosts == [0, 1, 2, 3]
        # One shared simulated clock: any estimated "offset" is residual
        # delivery asymmetry (some hosts consistently deliver later), so
        # it is bounded by the observed cross-host delivery spread — not
        # the seconds-scale epoch gaps of real fabric hosts.
        spread = report.skew_spread().max
        for offset in report.offsets.values():
            assert abs(offset) <= spread

    def test_report_serializes(self, report_and_events):
        report, _ = report_and_events
        document = json.loads(json.dumps(report.as_dict(), sort_keys=True))
        assert document["schema"] == "repro.obs.causal"
        assert document["coverage"] == 1.0
        text = report.render(limit=5)
        assert "causal stitch" in text
        assert "create->deliver" in text
