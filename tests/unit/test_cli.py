"""CLI entry points (python -m repro ...)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.n == 4
        assert args.broadcast == "bracha"
        assert args.coin == "ideal"

    def test_rejects_unknown_broadcast(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--broadcast", "pigeons"])

    def test_baseline_choices(self):
        args = build_parser().parse_args(["baseline", "--protocol", "dumbo"])
        assert args.protocol == "dumbo"


class TestCommands:
    def test_run_command(self, capsys):
        assert main(["run", "--blocks", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "total order across correct nodes: OK" in out
        assert "bits sent" in out

    def test_run_with_avid(self, capsys):
        assert main(["run", "--blocks", "5", "--broadcast", "avid"]) == 0
        assert "broadcast=avid" in capsys.readouterr().out

    def test_render_command(self, capsys):
        assert main(["render", "--rounds", "4"]) == 0
        out = capsys.readouterr().out
        assert "src/round" in out
        assert "p0" in out

    def test_baseline_command(self, capsys):
        assert main(["baseline", "--protocol", "vaba", "--slots", "2"]) == 0
        out = capsys.readouterr().out
        assert "outputs per node: [2, 2, 2, 2]" in out
