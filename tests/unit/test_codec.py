"""Canonical binary codec: round-trips for every message type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.aba import AbaMessage
from repro.baselines.dispersal import DispersalMessage
from repro.baselines.dumbo import DispersalRef
from repro.baselines.honeybadger import AbaEnvelope
from repro.baselines.smr import SlotMessage
from repro.baselines.vaba import VabaMessage
from repro.broadcast.avid import AvidMessage
from repro.broadcast.bracha import BrachaMessage
from repro.broadcast.gossip import GossipMessage, GossipSubscribe
from repro.codec import decode_message, encode_message
from repro.codec.primitives import Reader, encode_bytes, encode_uint
from repro.coin.threshold import CoinShareMessage
from repro.common.errors import WireFormatError
from repro.dag.vertex import Ref, Vertex
from repro.mempool.blocks import Block


def sample_vertex():
    return Vertex(
        5,
        2,
        Block(2, 5, (b"tx-a", b"tx-b")),
        frozenset({0, 1, 3}),
        frozenset({Ref(1, 2)}),
        coin_share=987654321,
    )


SAMPLES = [
    BrachaMessage("ECHO", 2, 5, sample_vertex()),
    BrachaMessage("SEND", 0, 1, sample_vertex()),
    GossipSubscribe("echo"),
    GossipMessage("READY", 1, 9, sample_vertex()),
    AvidMessage("VAL", 0, 3, b"\x11" * 32, 2, b"frag-bytes", (b"\x22" * 32,), 123),
    CoinShareMessage(7, 2**127 + 5),
    AbaMessage("BVAL", 4, 1),
    AbaEnvelope(3, AbaMessage("AUX", 2, 0)),
    VabaMessage("PROMOTE", 2, 3, Block(1, 9, (b"v",))),
    VabaMessage("DONE", 1, 0, None),
    VabaMessage("VIEWCHANGE", 1, 2, DispersalRef(2, b"\x33" * 32, 999)),
    DispersalMessage("STORE", b"\x44" * 32, 1, b"frag", (b"\x55" * 32,), 40),
    DispersalMessage("FETCH", b"\x44" * 32),
    SlotMessage(12, VabaMessage("ACK", 1, 2, None)),
    SlotMessage(3, BrachaMessage("READY", 1, 0, Block(1, 0, (b"hb",)))),
]


class TestRoundTrips:
    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__ + getattr(m, "kind", ""))
    def test_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_nested_slot_message(self):
        inner = SlotMessage(1, AbaEnvelope(0, AbaMessage("BVAL", 1, 1)))
        outer = SlotMessage(2, inner)
        assert decode_message(encode_message(outer)) == outer

    @given(
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=2**63),
        st.lists(st.binary(max_size=30), max_size=5),
    )
    def test_bracha_with_random_blocks(self, source, round_, txs):
        vertex = Vertex(
            max(1, round_ % 1000),
            source % 100,
            Block(source, round_, tuple(txs)),
            frozenset({0, 1, 2}),
        )
        message = BrachaMessage("ECHO", source % 100, round_, vertex)
        assert decode_message(encode_message(message)) == message


class TestErrors:
    def test_unknown_tag_rejected(self):
        with pytest.raises(WireFormatError):
            decode_message(b"\xff\x00")

    def test_trailing_bytes_rejected(self):
        frame = encode_message(GossipSubscribe("echo"))
        with pytest.raises(WireFormatError):
            decode_message(frame + b"\x00")

    def test_truncated_rejected(self):
        frame = encode_message(SAMPLES[0])
        with pytest.raises(WireFormatError):
            decode_message(frame[: len(frame) // 2])

    def test_unregistered_type_rejected(self):
        class Unknown:
            pass

        with pytest.raises(WireFormatError):
            encode_message(Unknown())  # type: ignore[arg-type]


class TestPrimitives:
    def test_uint_width_overflow(self):
        with pytest.raises(WireFormatError):
            encode_uint(256, 1)
        with pytest.raises(WireFormatError):
            encode_uint(-1, 4)

    def test_reader_sequencing(self):
        data = encode_uint(5, 2) + encode_bytes(b"abc")
        reader = Reader(data)
        assert reader.uint(2) == 5
        assert reader.bytes_() == b"abc"
        reader.expect_end()

    def test_reader_truncation(self):
        reader = Reader(b"\x00")
        with pytest.raises(WireFormatError):
            reader.uint(4)

    def test_reader_bad_bool(self):
        reader = Reader(b"\x07")
        with pytest.raises(WireFormatError):
            reader.bool_()
