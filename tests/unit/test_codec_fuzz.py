"""Codec robustness: arbitrary bytes must fail cleanly, never crash oddly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import decode_message, encode_message
from repro.common.errors import WireFormatError


class TestDecodeFuzz:
    @settings(max_examples=200)
    @given(st.binary(min_size=0, max_size=200))
    def test_random_bytes_raise_wire_format_error_or_decode(self, data):
        """Garbage either decodes (a valid frame by chance) or raises
        WireFormatError — never any other exception type."""
        try:
            decode_message(data)
        except WireFormatError:
            pass

    @settings(max_examples=60)
    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=0, max_value=50))
    def test_truncation_of_valid_frames(self, payload, cut):
        from repro.broadcast.gossip import GossipSubscribe

        frame = encode_message(GossipSubscribe(payload.decode("latin1")))
        truncated = frame[: max(1, len(frame) - 1 - cut % len(frame))]
        if truncated == frame:
            return
        try:
            decoded = decode_message(truncated)
            # Only acceptable if truncation produced another valid frame.
            assert decoded is not None
        except WireFormatError:
            pass

    @settings(max_examples=60)
    @given(st.binary(min_size=2, max_size=120), st.integers(min_value=0, max_value=119))
    def test_bit_flips_never_crash(self, base, position):
        from repro.baselines.vaba import VabaMessage
        from repro.mempool.blocks import Block

        frame = bytearray(
            encode_message(VabaMessage("PROMOTE", 1, 2, Block(0, 1, (base,))))
        )
        frame[position % len(frame)] ^= 0xFF
        try:
            decode_message(bytes(frame))
        except WireFormatError:
            pass
