"""Global perfect coin implementations: agreement, termination, fairness."""

from collections import Counter

from repro.coin.ideal import IdealCoin
from repro.coin.threshold import CoinShareMessage, ThresholdCoin, leader_from_secret
from repro.crypto.dealer import CoinDealer


class TestIdealCoin:
    def test_agreement_across_processes(self):
        coins = [IdealCoin(seed=7, n=4) for _ in range(4)]
        for coin in coins:
            coin.invoke(3)
        leaders = {coin.leader_of(3) for coin in coins}
        assert len(leaders) == 1

    def test_resolves_immediately(self):
        coin = IdealCoin(seed=7, n=4)
        assert coin.leader_of(1) is None
        coin.invoke(1)
        assert coin.leader_of(1) is not None

    def test_fairness_statistical(self):
        coin = IdealCoin(seed=11, n=4)
        counts = Counter(coin.oracle(w) for w in range(4000))
        for process in range(4):
            assert 0.2 < counts[process] / 4000 < 0.3  # expected 0.25

    def test_oracle_matches_invoke(self):
        coin = IdealCoin(seed=7, n=4)
        peeked = coin.oracle(9)
        coin.invoke(9)
        assert coin.leader_of(9) == peeked

    def test_subscription_replays_past_resolutions(self):
        coin = IdealCoin(seed=7, n=4)
        coin.invoke(1)
        seen = []
        coin.subscribe(lambda instance, leader: seen.append((instance, leader)))
        assert seen == [(1, coin.leader_of(1))]


def build_threshold_coins(n=4, threshold=2, seed=3):
    dealer = CoinDealer(seed=seed, n=n, threshold=threshold)
    sent: list[tuple[int, CoinShareMessage]] = []
    coins = []
    for pid in range(n):
        coin = ThresholdCoin(
            pid,
            dealer,
            dealer.key_for(pid),
            broadcast_share=lambda msg, pid=pid: sent.append((pid, msg)),
        )
        coins.append(coin)
    return dealer, coins, sent


class TestThresholdCoin:
    def test_unresolved_below_threshold(self):
        _dealer, coins, sent = build_threshold_coins()
        coins[0].invoke(1)
        # Only its own share so far: below f+1 = 2.
        assert coins[0].leader_of(1) is None

    def test_resolves_at_threshold_and_agreement(self):
        _dealer, coins, sent = build_threshold_coins()
        coins[0].invoke(1)
        coins[1].invoke(1)
        # Deliver the queued broadcasts everywhere.
        for sender, message in list(sent):
            for coin in coins:
                coin.on_message(sender, message)
        leaders = {coin.leader_of(1) for coin in coins}
        assert None not in leaders
        assert len(leaders) == 1

    def test_leader_matches_dealer_secret(self):
        dealer, coins, sent = build_threshold_coins()
        coins[0].invoke(2)
        coins[1].invoke(2)
        for sender, message in list(sent):
            for coin in coins:
                coin.on_message(sender, message)
        expected = leader_from_secret(dealer.secret(2), 2, 4)
        assert coins[2].leader_of(2) == expected

    def test_forged_shares_rejected(self):
        _dealer, coins, sent = build_threshold_coins()
        coins[0].invoke(1)
        # A Byzantine process spams bogus shares; they must not resolve it.
        for _ in range(5):
            coins[0].deliver_share(3, 1, 123456789)
        assert coins[0].leader_of(1) is None

    def test_duplicate_shares_do_not_double_count(self):
        _dealer, coins, sent = build_threshold_coins()
        coins[0].invoke(1)
        share = coins[1]._key.share(1)
        coins[0].deliver_share(1, 1, share)
        coins[0].deliver_share(1, 1, share)
        assert coins[0].leader_of(1) is not None  # 2 distinct (0 and 1)

    def test_invoke_idempotent(self):
        _dealer, coins, sent = build_threshold_coins()
        coins[0].invoke(1)
        coins[0].invoke(1)
        assert len(sent) == 1

    def test_share_wire_size_constant(self):
        message = CoinShareMessage(1, 2**100)
        assert message.wire_size(4) == message.wire_size(100)

    def test_fairness_statistical(self):
        dealer = CoinDealer(seed=13, n=4, threshold=2)
        counts = Counter(
            leader_from_secret(dealer.secret(w), w, 4) for w in range(4000)
        )
        for process in range(4):
            assert 0.2 < counts[process] / 4000 < 0.3
