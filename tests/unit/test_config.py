"""SystemConfig validation."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig(n=4)
        assert config.f == 1
        assert config.quorum == 3
        assert config.small_quorum == 2
        assert config.genesis_size == 4
        assert config.wave_length == 4
        assert list(config.processes) == [0, 1, 2, 3]
        assert config.correct == [0, 1, 2, 3]

    def test_byzantine_set(self):
        config = SystemConfig(n=4, byzantine=frozenset({3}))
        assert config.correct == [0, 1, 2]
        assert not config.is_correct(3)
        assert config.is_correct(0)

    def test_too_many_byzantine_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=4, byzantine=frozenset({2, 3}))

    def test_byzantine_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=4, byzantine=frozenset({7}))

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=0)

    def test_genesis_size_bounds(self):
        assert SystemConfig(n=4, genesis_size=3).genesis_size == 3
        with pytest.raises(ConfigurationError):
            SystemConfig(n=4, genesis_size=2)  # below 2f+1
        with pytest.raises(ConfigurationError):
            SystemConfig(n=4, genesis_size=5)  # above n

    def test_wave_length_positive(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(n=4, wave_length=0)

    def test_frozen(self):
        config = SystemConfig(n=4)
        with pytest.raises(Exception):
            config.n = 7

    def test_large_deployment(self):
        config = SystemConfig(n=31)
        assert config.f == 10
        assert config.quorum == 21
