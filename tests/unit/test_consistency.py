"""Digest-based prefix-consistency check shared by cluster and fabric."""

import pytest

from repro.common.errors import ConsistencyError
from repro.core.node import OrderedEntry
from repro.mempool.blocks import Block
from repro.runtime.consistency import (
    check_prefix_consistency,
    digest_log,
    entry_digest,
)


def entry(position, proposer, sequence, round_=1, payload=b"tx"):
    return OrderedEntry(
        position=position,
        block=Block(proposer, sequence, (payload,)),
        round=round_,
        source=proposer,
        time=0.0,
    )


class TestEntryDigest:
    def test_digest_is_stable_hex(self):
        a = entry_digest(entry(0, proposer=1, sequence=0))
        assert a == entry_digest(entry(0, proposer=1, sequence=0))
        assert len(a) == 64
        int(a, 16)  # valid hex

    def test_digest_covers_block_bytes_not_just_slot(self):
        # Same (round, source) slot, different block contents: the old
        # (round, source) comparison called these equal; the digest must not.
        a = entry(0, proposer=1, sequence=0, payload=b"pay alice")
        b = entry(0, proposer=1, sequence=0, payload=b"pay mallory")
        assert (a.round, a.source) == (b.round, b.source)
        assert entry_digest(a) != entry_digest(b)

    def test_digest_covers_slot(self):
        a = entry(0, proposer=1, sequence=0, round_=1)
        b = entry(0, proposer=1, sequence=0, round_=2)
        assert entry_digest(a) != entry_digest(b)


class TestPrefixConsistency:
    def test_agreeing_prefixes_pass(self):
        log = digest_log([entry(i, proposer=i % 3, sequence=i) for i in range(5)])
        agreed = check_prefix_consistency(
            {"node 0": log, "node 1": log[:3], "node 2": log}
        )
        assert agreed == 3

    def test_divergent_block_same_slot_raises(self):
        honest = digest_log(
            [entry(0, proposer=1, sequence=0, payload=b"pay alice")]
        )
        equivocated = digest_log(
            [entry(0, proposer=1, sequence=0, payload=b"pay mallory")]
        )
        with pytest.raises(ConsistencyError, match="position 0"):
            check_prefix_consistency({"node 0": honest, "node 1": equivocated})

    def test_error_names_both_nodes(self):
        logs = {
            "host-a:0": digest_log([entry(0, proposer=0, sequence=0)]),
            "host-b:1": digest_log([entry(0, proposer=0, sequence=1)]),
        }
        with pytest.raises(ConsistencyError, match="host-a:0.*host-b:1"):
            check_prefix_consistency(logs)

    def test_reordered_entries_raise(self):
        a = entry(0, proposer=0, sequence=0)
        b = entry(1, proposer=1, sequence=0)
        with pytest.raises(ConsistencyError):
            check_prefix_consistency(
                {"node 0": digest_log([a, b]), "node 1": digest_log([b, a])}
            )

    def test_empty_inputs(self):
        assert check_prefix_consistency({}) == 0
        assert check_prefix_consistency({"node 0": [], "node 1": []}) == 0

    def test_survives_python_O_semantics(self):
        # The check must not rely on `assert` (stripped under python -O):
        # it raises a real exception type.
        assert issubclass(ConsistencyError, Exception)
        with pytest.raises(ConsistencyError):
            check_prefix_consistency({"a": ["x"], "b": ["y"]})
