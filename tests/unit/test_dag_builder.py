"""Algorithm 2 unit behaviour, driven directly (no network)."""


from repro.common.config import SystemConfig
from repro.dag.builder import DagBuilder
from repro.dag.vertex import Ref, Vertex
from repro.mempool.blocks import Block, BlockSource, TransactionGenerator


class FakeRbc:
    """Captures r_bcast calls; lets tests loop vertices back."""

    def __init__(self):
        self.sent: list[tuple[Vertex, int]] = []

    def r_bcast(self, payload, round_):
        self.sent.append((payload, round_))


def make_builder(n=4, with_generator=True, waves=None, **kwargs):
    config = SystemConfig(n=n, seed=0)
    generator = TransactionGenerator(0, 0) if with_generator else None
    source = BlockSource(0, generator)
    waves = waves if waves is not None else []
    builder = DagBuilder(
        0, config, source, on_wave_ready=waves.append, **kwargs
    )
    rbc = FakeRbc()
    builder.attach_broadcast(rbc)
    return builder, rbc, waves, config


def vertex(round_, source, strong, weak=()):
    return Vertex(
        round_,
        source,
        Block(source, round_),
        frozenset(strong),
        frozenset(Ref(s, r) for s, r in weak),
    )


class TestRoundAdvance:
    def test_start_broadcasts_round_one(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        assert builder.round == 1
        assert len(rbc.sent) == 1
        sent, round_ = rbc.sent[0]
        assert round_ == 1
        assert sent.strong_parents == frozenset({0, 1, 2, 3})  # genesis

    def test_advances_on_quorum(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        for source in (1, 2):
            builder.on_r_deliver(vertex(1, source, {0, 1, 2}), 1, source)
        assert builder.round == 1  # only 2 < 2f+1 vertices in round 1
        builder.on_r_deliver(vertex(1, 3, {0, 1, 2}), 1, 3)
        assert builder.round == 2
        assert rbc.sent[-1][1] == 2

    def test_own_vertex_counts_after_self_delivery(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        own = rbc.sent[0][0]
        builder.on_r_deliver(own, 1, 0)
        builder.on_r_deliver(vertex(1, 1, {0, 1, 2}), 1, 1)
        assert builder.round == 1
        builder.on_r_deliver(vertex(1, 2, {0, 1, 2}), 1, 2)
        assert builder.round == 2

    def test_wave_ready_fires_on_multiples_of_four(self):
        builder, rbc, waves, _cfg = make_builder()
        builder.start()
        for round_ in range(1, 9):
            own = rbc.sent[-1][0]
            builder.on_r_deliver(own, round_, 0)
            for source in (1, 2):
                builder.on_r_deliver(
                    vertex(round_, source, set(builder.store.round(round_ - 1))),
                    round_,
                    source,
                )
        assert waves == [1, 2]

    def test_blocks_wait_until_available(self):
        builder, rbc, _waves, _cfg = make_builder(with_generator=False)
        block_source = builder.block_source
        block_source.enqueue_transactions(b"first")
        builder.start()
        assert builder.round == 1
        # Complete round 1 — but there is no block to propose for round 2.
        builder.on_r_deliver(rbc.sent[0][0], 1, 0)
        for source in (1, 2):
            builder.on_r_deliver(vertex(1, source, {0, 1, 2, 3}), 1, source)
        assert builder.round == 1
        block_source.enqueue_transactions(b"second")
        builder.on_blocks_available()
        assert builder.round == 2


class TestBuffering:
    def test_vertex_waits_for_parents(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        # Round-2 vertex arrives before its round-1 parents.
        early = vertex(2, 1, {1, 2, 3})
        builder.on_r_deliver(early, 2, 1)
        assert not builder.store.contains(early.ref)
        for source in (1, 2, 3):
            builder.on_r_deliver(vertex(1, source, {0, 1, 2}), 1, source)
        assert builder.store.contains(early.ref)

    def test_weak_parent_must_be_present_too(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        for source in (1, 2, 3):
            builder.on_r_deliver(vertex(1, source, {0, 1, 2}), 1, source)
        for source in (1, 2, 3):
            builder.on_r_deliver(vertex(2, source, {1, 2, 3}), 2, source)
        # Round-3 vertex weak-references a round-1 vertex we never delivered.
        pending = vertex(3, 1, {1, 2, 3}, weak=((0, 1),))
        builder.on_r_deliver(pending, 3, 1)
        assert not builder.store.contains(pending.ref)
        builder.on_r_deliver(vertex(1, 0, {0, 1, 2}), 1, 0)
        assert builder.store.contains(pending.ref)


class TestValidation:
    def test_rejects_source_mismatch(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        v = vertex(1, 1, {0, 1, 2})
        builder.on_r_deliver(v, 1, 2)  # authenticated source says 2
        assert v not in builder.buffer

    def test_rejects_round_mismatch(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        v = vertex(1, 1, {0, 1, 2})
        builder.on_r_deliver(v, 2, 1)
        assert v not in builder.buffer

    def test_rejects_insufficient_strong_edges(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        v = vertex(1, 1, {0, 1})  # 2 < 2f+1 = 3
        builder.on_r_deliver(v, 1, 1)
        assert v not in builder.buffer

    def test_rejects_weak_edge_to_recent_round(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        v = vertex(2, 1, {0, 1, 2}, weak=((3, 1),))  # weak to round-1 = r-1
        builder.on_r_deliver(v, 2, 1)
        assert v not in builder.buffer

    def test_rejects_round_zero_vertex(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        v = vertex(0, 1, {0, 1, 2})
        builder.on_r_deliver(v, 0, 1)
        assert v not in builder.buffer


class TestWeakEdges:
    def test_late_vertex_gets_weak_edge(self):
        """Figure 1's scenario: a slow process's old vertex gets weak-edged."""
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        # Rounds 1-2 complete without source 3.
        builder.on_r_deliver(rbc.sent[0][0], 1, 0)
        for source in (1, 2):
            builder.on_r_deliver(vertex(1, source, {0, 1, 2}), 1, source)
        builder.on_r_deliver(rbc.sent[1][0], 2, 0)
        for source in (1, 2):
            builder.on_r_deliver(vertex(2, source, {0, 1, 2}), 2, source)
        # The slow round-1 vertex from source 3 arrives now.
        builder.on_r_deliver(vertex(1, 3, {0, 1, 2}), 1, 3)
        builder.on_r_deliver(rbc.sent[2][0], 3, 0)
        for source in (1, 2):
            builder.on_r_deliver(vertex(3, source, {0, 1, 2}), 3, source)
        # Our round-4 vertex cannot reach (3,1) through strong edges.
        created = rbc.sent[3][0]
        assert created.round == 4
        assert Ref(3, 1) in created.weak_parents

    def test_no_weak_edges_when_everything_reachable(self):
        builder, rbc, _waves, _cfg = make_builder()
        builder.start()
        for round_ in (1, 2, 3):
            builder.on_r_deliver(rbc.sent[round_ - 1][0], round_, 0)
            for source in (1, 2, 3):
                builder.on_r_deliver(
                    vertex(round_, source, set(builder.store.round(round_ - 1))),
                    round_,
                    source,
                )
        for _, sent_round in rbc.sent:
            created = rbc.sent[sent_round - 1][0]
            assert created.weak_parents == frozenset()

    def test_coin_share_provider_attached(self):
        shares = {5: 777}
        builder, rbc, _waves, _cfg = make_builder(
            coin_share_provider=lambda r: shares.get(r)
        )
        builder.start()
        for round_ in range(1, 5):
            builder.on_r_deliver(rbc.sent[round_ - 1][0], round_, 0)
            for source in (1, 2, 3):
                builder.on_r_deliver(
                    vertex(round_, source, set(builder.store.round(round_ - 1))),
                    round_,
                    source,
                )
        round5 = rbc.sent[4][0]
        assert round5.round == 5
        assert round5.coin_share == 777
