"""DagStore reachability: bitset answers vs networkx ground truth."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DagError
from repro.dag.store import DagStore
from repro.dag.vertex import Ref, Vertex
from repro.mempool.blocks import Block


def make_vertex(round_, source, strong, weak=(), n_txs=0):
    return Vertex(
        round_,
        source,
        Block(source, round_, tuple(b"t" for _ in range(n_txs))),
        frozenset(strong),
        frozenset(Ref(s, r) for s, r in weak),
    )


def build_random_dag(seed, n=4, rounds=6):
    """Grow a layered DAG with random strong/weak edges; mirror in networkx."""
    rng = random.Random(seed)
    store = DagStore(genesis_size=n)
    graph = nx.DiGraph()
    for source in range(n):
        graph.add_node(Ref(source, 0))
    all_refs = [Ref(source, 0) for source in range(n)]
    strong_graph = graph.copy()
    for round_ in range(1, rounds + 1):
        prev = [ref for ref in all_refs if ref.round == round_ - 1]
        new_refs = []
        skipped = 0
        for source in range(n):
            if round_ > 1 and skipped < n - 3 and rng.random() < 0.2:
                skipped += 1
                continue  # this process's vertex is late/missing
            k = min(len(prev), max(3, len(prev) - 1))
            strong = {ref.source for ref in rng.sample(prev, k)}
            old = [ref for ref in all_refs if ref.round < round_ - 1]
            weak = set()
            if old and rng.random() < 0.5:
                pick = rng.choice(old)
                weak.add((pick.source, pick.round))
            vertex = make_vertex(round_, source, strong, weak)
            store.add(vertex)
            ref = vertex.ref
            graph.add_node(ref)
            strong_graph.add_node(ref)
            for parent in strong:
                graph.add_edge(ref, Ref(parent, round_ - 1))
                strong_graph.add_edge(ref, Ref(parent, round_ - 1))
            for s, r in weak:
                graph.add_edge(ref, Ref(s, r))
            new_refs.append(ref)
        all_refs.extend(new_refs)
    return store, graph, strong_graph, all_refs


class TestReachabilityAgainstNetworkx:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_path_matches_descendants(self, seed):
        store, graph, strong_graph, refs = build_random_dag(seed)
        rng = random.Random(seed + 1)
        pairs = [(rng.choice(refs), rng.choice(refs)) for _ in range(80)]
        for a, b in pairs:
            expected = a == b or nx.has_path(graph, a, b)
            assert store.path(a, b) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_strong_path_matches_strong_subgraph(self, seed):
        store, graph, strong_graph, refs = build_random_dag(seed)
        rng = random.Random(seed + 2)
        pairs = [(rng.choice(refs), rng.choice(refs)) for _ in range(80)]
        for a, b in pairs:
            expected = a == b or nx.has_path(strong_graph, a, b)
            assert store.strong_path(a, b) == expected

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_causal_history_matches_descendants(self, seed):
        store, graph, _strong, refs = build_random_dag(seed)
        rng = random.Random(seed + 3)
        for ref in rng.sample(refs, 10):
            expected = set(nx.descendants(graph, ref)) | {ref}
            got = {v.ref for v in store.causal_history(ref)}
            assert got == expected


class TestCompactPreservesReachability:
    """``compact`` keeps every survivor-to-survivor answer intact.

    The memory-bounded large-grid sweeps lean on this: nodes collect
    delivered rounds mid-run, and the commit walk keeps querying ``path``
    / ``strong_path`` across the survivors — including pairs whose only
    connecting paths ran through collected vertices. The stored masks are
    transitive closures, so restriction must not change any answer.
    """

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=20),
    )
    def test_all_survivor_pairs_answer_unchanged(self, seed, horizon):
        store, _graph, _strong, refs = build_random_dag(seed, n=8, rounds=30)
        survivors = [ref for ref in refs if ref.round >= horizon]
        before = {
            (a, b): (store.path(a, b), store.strong_path(a, b))
            for a in survivors
            for b in survivors
        }
        store.compact(horizon, [])
        for (a, b), expected in before.items():
            assert (store.path(a, b), store.strong_path(a, b)) == expected
        for ref in refs:
            if ref.round < horizon:
                assert not store.contains(ref)


class TestStoreBasics:
    def test_genesis_present(self):
        store = DagStore(genesis_size=4)
        assert store.round_size(0) == 4
        assert store.vertex_count == 4

    def test_add_requires_parents(self):
        store = DagStore(genesis_size=4)
        orphan = make_vertex(2, 0, {0, 1, 2})  # round-1 parents absent
        assert not store.can_add(orphan)
        with pytest.raises(DagError):
            store.add(orphan)

    def test_duplicate_slot_rejected(self):
        store = DagStore(genesis_size=4)
        vertex = make_vertex(1, 0, {0, 1, 2})
        store.add(vertex)
        with pytest.raises(DagError):
            store.add(make_vertex(1, 0, {1, 2, 3}))

    def test_round_view_and_get(self):
        store = DagStore(genesis_size=4)
        vertex = make_vertex(1, 2, {0, 1, 2})
        store.add(vertex)
        assert store.round(1) == {2: vertex}
        assert store.get(Ref(2, 1)) == vertex
        assert store.get(Ref(3, 1)) is None
        assert store.contains(Ref(2, 1))

    def test_causal_history_sorted_deterministically(self):
        store = DagStore(genesis_size=4)
        v1 = make_vertex(1, 1, {0, 1, 2, 3})
        store.add(v1)
        history = store.causal_history(v1.ref)
        keys = [(v.round, v.source) for v in history]
        assert keys == sorted(keys)

    def test_vertices_for_mask(self):
        store = DagStore(genesis_size=4)
        v1 = make_vertex(1, 0, {0, 1, 2})
        store.add(v1)
        mask = store.closed_mask(v1.ref)
        got = store.vertices_for_mask(mask)
        assert {v.ref for v in got} == {Ref(0, 0), Ref(1, 0), Ref(2, 0), v1.ref}

    def test_path_unknown_vertex_false(self):
        store = DagStore(genesis_size=4)
        assert not store.path(Ref(9, 9), Ref(0, 0))
        assert not store.strong_path(Ref(0, 0), Ref(9, 9))

    def test_weak_edges_excluded_from_strong_path(self):
        store = DagStore(genesis_size=4)
        v1 = make_vertex(1, 0, {0, 1, 2})
        store.add(v1)
        v2 = make_vertex(2, 0, {0}, weak=())
        # Give v2 only one strong parent (store does not enforce quorum; the
        # builder does) plus a weak edge to genesis source 3.
        v2 = make_vertex(2, 0, {0}, weak=((3, 0),))
        store.add(v2)
        assert store.path(v2.ref, Ref(3, 0))
        assert not store.strong_path(v2.ref, Ref(3, 0))
