"""Trusted-dealer coin key material."""

import random

import pytest

from repro.common.errors import SecretSharingError
from repro.crypto.dealer import CoinDealer
from repro.crypto.shamir import reconstruct_secret


class TestCoinDealer:
    def test_any_threshold_keys_reconstruct_instance_secret(self):
        dealer = CoinDealer(seed=9, n=7, threshold=3)
        keys = [dealer.key_for(i) for i in range(7)]
        for instance in (1, 2, 50):
            expected = dealer.secret(instance)
            for _ in range(5):
                chosen = random.Random(instance).sample(range(7), 3)
                points = [(i + 1, keys[i].share(instance)) for i in chosen]
                assert reconstruct_secret(points, 3) == expected

    def test_instances_independent(self):
        dealer = CoinDealer(seed=9, n=4, threshold=2)
        assert dealer.secret(1) != dealer.secret(2)

    def test_share_verification(self):
        dealer = CoinDealer(seed=9, n=4, threshold=2)
        key = dealer.key_for(2)
        assert dealer.verify_share(2, 5, key.share(5))
        assert not dealer.verify_share(2, 5, key.share(5) + 1)
        assert not dealer.verify_share(1, 5, key.share(5))

    def test_key_bound_to_process(self):
        dealer = CoinDealer(seed=9, n=4, threshold=2)
        with pytest.raises(SecretSharingError):
            dealer.key_for(4)
        with pytest.raises(SecretSharingError):
            dealer.key_for(-1)

    def test_deterministic_across_instances_of_dealer(self):
        a = CoinDealer(seed=5, n=4, threshold=2)
        b = CoinDealer(seed=5, n=4, threshold=2)
        assert a.secret(3) == b.secret(3)
        assert a.share(1, 3) == b.share(1, 3)

    def test_bad_threshold_rejected(self):
        with pytest.raises(SecretSharingError):
            CoinDealer(seed=1, n=4, threshold=5)
