"""Dispersal/retrieval under Byzantine fragment injection (Dumbo's substrate)."""

from repro.baselines.dispersal import AvidDispersal, DispersalMessage
from repro.codes.merkle import MerkleTree
from repro.codes.reed_solomon import rs_encode
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.sim.adversary import UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class Host(Process):
    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.dispersal = AvidDispersal(
            pid, network.config, self.send, self.broadcast
        )

    def on_message(self, src, message):
        self.dispersal.handle(src, message)


def build(seed=0, n=4):
    config = SystemConfig(n=n, seed=seed)
    sched = Scheduler()
    network = Network(sched, config, UniformDelay(derive_rng(seed, "d")))
    hosts = [Host(pid, network) for pid in range(n)]
    return sched, hosts


class TestByzantineFragments:
    def test_forged_fragment_responses_rejected(self):
        """Retrieval ignores fragments that fail Merkle verification."""
        sched, hosts = build(seed=1)
        data = b"the real batch" * 10
        root = hosts[0].dispersal.disperse(data)
        sched.run()
        # A Byzantine process spams bogus FRAGMENT messages at the retriever.
        results = []
        hosts[2].dispersal.retrieve(root, len(data), results.append)
        for _ in range(5):
            hosts[3].send(
                2,
                DispersalMessage("FRAGMENT", root, 1, b"garbage", (), len(data)),
            )
        sched.run()
        assert results == [data]

    def test_forged_store_rejected(self):
        """A STORE whose proof doesn't verify is never stored or echoed."""
        sched, hosts = build(seed=2)
        hosts[3].send(
            1, DispersalMessage("STORE", b"\x01" * 32, 1, b"junk", (), 10)
        )
        sched.run()
        assert not hosts[1].dispersal.is_complete(b"\x01" * 32)

    def test_echo_spam_cannot_fake_completion_for_retrievers(self):
        """Byzantine ECHOes may mark a root 'complete', but retrieval still
        requires k genuine, Merkle-verified fragments, which do not exist."""
        sched, hosts = build(seed=3)
        phantom_root = b"\x02" * 32
        for _ in range(4):
            for dst in range(4):
                hosts[3].send(
                    dst, DispersalMessage("ECHO", phantom_root, data_len=16)
                )
        sched.run()
        results = []
        hosts[0].dispersal.retrieve(phantom_root, 16, results.append)
        sched.run()
        assert results == []  # nothing reconstructable

    def test_two_concurrent_dispersals_do_not_mix(self):
        sched, hosts = build(seed=4)
        data_a = b"batch-A" * 20
        data_b = b"batch-B" * 20
        root_a = hosts[0].dispersal.disperse(data_a)
        root_b = hosts[1].dispersal.disperse(data_b)
        sched.run()
        out = {}
        hosts[2].dispersal.retrieve(root_a, len(data_a), lambda d: out.setdefault("a", d))
        hosts[2].dispersal.retrieve(root_b, len(data_b), lambda d: out.setdefault("b", d))
        sched.run()
        assert out == {"a": data_a, "b": data_b}

    def test_fragment_sizes_are_economical(self):
        """The whole point of dispersal: per-process bytes ~ |m|/(f+1)."""
        config = SystemConfig(n=4, seed=0)
        data = b"z" * 1000
        fragments = rs_encode(data, config.small_quorum, config.n)
        assert all(len(f) <= len(data) // 2 + 2 for f in fragments)
        assert MerkleTree(fragments).root  # commits to all of them
