"""GF(2^8) field axioms and table consistency."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.gf256 import gf_add, gf_div, gf_inv, gf_mul, gf_pow, poly_eval

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_commutative_and_self_inverse(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)
        assert gf_add(gf_add(a, b), b) == a

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(nonzero, nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    def test_zero_division_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)


class TestPower:
    @given(nonzero)
    def test_pow_255_is_identity(self, a):
        assert gf_pow(a, 255) == 1

    @given(nonzero, st.integers(min_value=-10, max_value=10))
    def test_pow_matches_repeated_multiplication(self, a, exponent):
        expected = 1
        base = a if exponent >= 0 else gf_inv(a)
        for _ in range(abs(exponent)):
            expected = gf_mul(expected, base)
        assert gf_pow(a, exponent) == expected

    def test_zero_powers(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)


class TestPolyEval:
    def test_constant(self):
        assert poly_eval([7], 99) == 7

    def test_linear(self):
        # p(x) = 3 + 2x at x = 1 is 3 XOR 2 = 1
        assert poly_eval([3, 2], 1) == 1

    @given(st.lists(elements, min_size=1, max_size=8), elements)
    def test_horner_matches_direct_sum(self, coefficients, x):
        direct = 0
        for power, coefficient in enumerate(coefficients):
            direct ^= gf_mul(coefficient, gf_pow(x, power)) if x or power == 0 else 0
        assert poly_eval(coefficients, x) == direct
