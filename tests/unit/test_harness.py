"""Deployment harness: consistency checks and run predicates."""

import pytest

from repro.common.config import SystemConfig
from repro.core.harness import DagRiderDeployment
from repro.core.node import DagRiderNode, OrderedEntry
from repro.mempool.blocks import Block


def small_deployment(**kwargs):
    return DagRiderDeployment(SystemConfig(n=4, seed=77), **kwargs)


class TestChecks:
    def test_check_total_order_passes_on_consistent_logs(self):
        dep = small_deployment()
        assert dep.run_until_ordered(10)
        dep.check_total_order()

    def test_check_total_order_detects_divergence(self):
        dep = small_deployment()
        assert dep.run_until_ordered(5)
        # Corrupt one node's log artificially.
        node = dep.correct_nodes[0]
        entry = node.ordered[2]
        node.ordered[2] = OrderedEntry(
            entry.position, entry.block, entry.round, (entry.source + 1) % 4, entry.time
        )
        with pytest.raises(AssertionError, match="total order violated"):
            dep.check_total_order()

    def test_check_integrity_detects_duplicates(self):
        dep = small_deployment()
        assert dep.run_until_ordered(5)
        node = dep.correct_nodes[0]
        node.ordered.append(node.ordered[0])
        with pytest.raises(AssertionError, match="twice"):
            dep.check_integrity()

    def test_total_transactions_ordered_counts_shortest_log(self):
        dep = small_deployment(batch_size=3)
        assert dep.run_until_ordered(8)
        total = dep.total_transactions_ordered()
        assert total >= 8 * 3


class TestRunPredicates:
    def test_run_until_ordered_false_when_budget_too_small(self):
        dep = small_deployment()
        assert not dep.run_until_ordered(1000, max_events=100)

    def test_run_until_wave(self):
        dep = small_deployment()
        assert dep.run_until_wave(2)
        assert all(node.decided_wave >= 2 for node in dep.correct_nodes)

    def test_correct_nodes_excludes_byzantine(self):
        config = SystemConfig(n=4, seed=1, byzantine=frozenset({2}))
        dep = DagRiderDeployment(config)
        assert [node.pid for node in dep.correct_nodes] == [0, 1, 3]

    def test_dealer_created_only_for_real_coins(self):
        assert small_deployment().dealer is None
        assert small_deployment(coin_mode="threshold").dealer is not None

    def test_default_node_kwargs_applied(self):
        dep = small_deployment(default_node_kwargs={"batch_size": 5})
        dep.run_until_ordered(4)
        node = dep.correct_nodes[0]
        assert all(len(e.block) == 5 for e in node.ordered if e.block.transactions)


class TestNodeAssembly:
    def test_unknown_broadcast_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            small_deployment(broadcast="smoke-signals")

    def test_unknown_coin_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            small_deployment(coin_mode="quantum")

    def test_threshold_without_dealer_rejected(self):
        from repro.common.config import SystemConfig
        from repro.common.errors import ConfigurationError
        from repro.common.rng import derive_rng
        from repro.sim.adversary import UniformDelay
        from repro.sim.network import Network
        from repro.sim.scheduler import Scheduler

        config = SystemConfig(n=4, seed=0)
        network = Network(Scheduler(), config, UniformDelay(derive_rng(0, "d")))
        with pytest.raises(ConfigurationError):
            DagRiderNode(0, network, coin_mode="threshold", dealer=None)

    def test_ordered_entry_fields(self):
        dep = small_deployment()
        assert dep.run_until_ordered(3)
        entry = dep.correct_nodes[0].ordered[0]
        assert entry.position == 0
        assert isinstance(entry.block, Block)
        assert entry.round >= 1
        assert 0 <= entry.source < 4
        assert entry.time > 0

    def test_on_deliver_callback(self):
        config = SystemConfig(n=4, seed=3)
        seen = []
        dep = DagRiderDeployment(
            config,
            default_node_kwargs={"on_deliver": seen.append},
        )
        assert dep.run_until_ordered(4)
        assert len(seen) >= 16  # 4 nodes x 4 entries
