"""Canonical hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import digest_bytes, digest_int, digest_of


class TestDigest:
    def test_deterministic(self):
        assert digest_of(1, "a", b"x") == digest_of(1, "a", b"x")

    def test_length(self):
        assert len(digest_of("x")) == 32

    def test_type_prefixes_prevent_cross_type_collisions(self):
        assert digest_of(1) != digest_of("1")
        assert digest_of(b"1") != digest_of("1")
        assert digest_of(True) != digest_of(1)
        assert digest_of(None) != digest_of(0)

    def test_structure_matters(self):
        assert digest_of((1, 2), 3) != digest_of(1, (2, 3))
        assert digest_of([1, 2]) != digest_of([1], [2])

    def test_int_range(self):
        value = digest_int("seed")
        assert 0 <= value < 2**256

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            digest_of(object())

    def test_bytes_digest_matches_hashlib(self):
        import hashlib

        assert digest_bytes(b"abc") == hashlib.sha256(b"abc").digest()

    @given(st.lists(st.one_of(st.integers(), st.text(max_size=10), st.binary(max_size=10)), max_size=6))
    def test_injective_on_simple_lists(self, values):
        # Same content hashes the same; a perturbed copy hashes differently.
        base = digest_of(*values)
        assert base == digest_of(*values)
        assert digest_of(*values, "extra") != base
