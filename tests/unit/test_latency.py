"""Latency analysis helpers."""

import pytest

from repro.analysis.latency import (
    commit_sizes,
    delivery_latencies,
    inter_commit_times,
    throughput,
)
from repro.common.config import SystemConfig
from repro.core.harness import DagRiderDeployment
from repro.core.node import OrderedEntry
from repro.core.ordering import CommitRecord
from repro.mempool.blocks import Block


def entry(position, round_, time, txs=1):
    return OrderedEntry(
        position, Block(0, position, tuple(b"t" for _ in range(txs))), round_, 0, time
    )


class TestPureHelpers:
    def test_inter_commit_times(self):
        commits = [CommitRecord(wave=w, time=t) for w, t in ((1, 2.0), (2, 5.0), (4, 9.0))]
        assert inter_commit_times(commits) == [3.0, 4.0]

    def test_inter_commit_times_short(self):
        assert inter_commit_times([]) == []
        assert inter_commit_times([CommitRecord(wave=1, time=1.0)]) == []

    def test_commit_sizes(self):
        commits = [
            CommitRecord(wave=1, delivered_count=3),
            CommitRecord(wave=2, delivered_count=12),
        ]
        assert commit_sizes(commits) == [3, 12]

    def test_delivery_latencies(self):
        ordered = [entry(0, 1, 2.0), entry(1, 1, 5.0), entry(2, 2, 6.0)]
        spreads = delivery_latencies(ordered)
        assert spreads[1] == 3.0
        assert spreads[2] == 0.0

    def test_throughput(self):
        ordered = [entry(0, 1, 1.0, txs=4), entry(1, 1, 3.0, txs=4), entry(2, 2, 99.0, txs=4)]
        assert throughput(ordered, horizon=10.0) == pytest.approx(0.8)

    def test_throughput_bad_horizon(self):
        with pytest.raises(ValueError):
            throughput([], horizon=0)


class TestOnRealRun:
    def test_commit_metrics_from_deployment(self):
        deployment = DagRiderDeployment(SystemConfig(n=4, seed=9))
        assert deployment.run_until_wave(4)
        node = deployment.correct_nodes[0]
        gaps = inter_commit_times(node.ordering.commits)
        assert gaps and all(gap > 0 for gap in gaps)
        sizes = commit_sizes(node.ordering.commits)
        # Steady-state commits deliver O(n) vertices (>= 2f+1 per round of a
        # wave); the first commit may be just the wave-1 leader itself.
        assert max(sizes) >= 3
        rate = throughput(node.ordered, deployment.scheduler.now)
        assert rate > 0
