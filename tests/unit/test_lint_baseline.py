"""Baseline workflow and CLI contract for the determinism lint.

The workflow under test is the CI one: grandfather pre-existing violations
in ``lint-baseline.json``, fail on anything new, survive line-number drift,
and honour the documented exit codes (0 clean, 1 new violations, 2 usage
errors).
"""

import json

import pytest

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.violations import Violation

OLD_VIOLATION = "import random\n"
NEW_VIOLATION = "values = list({1, 2})\n"


@pytest.fixture
def tree(tmp_path):
    """A tiny lintable package with one pre-existing violation."""
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "old.py").write_text(OLD_VIOLATION)
    (package / "clean.py").write_text("x = 1\n")
    return tmp_path


def run_cli(tree, *extra):
    return main(["pkg", "--root", str(tree), *map(str, extra)])


class TestBaselineWorkflow:
    def test_no_baseline_fails_on_existing_violation(self, tree, monkeypatch):
        monkeypatch.chdir(tree)
        assert run_cli(tree) == 1

    def test_write_then_check_passes(self, tree, monkeypatch):
        monkeypatch.chdir(tree)
        baseline = tree / "lint-baseline.json"
        assert run_cli(tree, "--baseline", baseline, "--write-baseline") == 0
        assert baseline.exists()
        assert run_cli(tree, "--baseline", baseline) == 0

    def test_new_violation_fails_despite_baseline(self, tree, monkeypatch):
        monkeypatch.chdir(tree)
        baseline = tree / "lint-baseline.json"
        run_cli(tree, "--baseline", baseline, "--write-baseline")
        (tree / "pkg" / "fresh.py").write_text(NEW_VIOLATION)
        assert run_cli(tree, "--baseline", baseline) == 1

    def test_second_occurrence_in_same_file_fails(self, tree, monkeypatch):
        # The baseline records *counts*: a second copy of a grandfathered
        # pattern in the same file is new.
        monkeypatch.chdir(tree)
        (tree / "pkg" / "old.py").write_text(NEW_VIOLATION)
        baseline = tree / "lint-baseline.json"
        run_cli(tree, "--baseline", baseline, "--write-baseline")
        assert run_cli(tree, "--baseline", baseline) == 0
        (tree / "pkg" / "old.py").write_text(NEW_VIOLATION + NEW_VIOLATION)
        assert run_cli(tree, "--baseline", baseline) == 1

    def test_baselined_violation_survives_line_shift(self, tree, monkeypatch):
        # Fingerprints hash content, not positions: unrelated edits above a
        # grandfathered hit must not resurrect it.
        monkeypatch.chdir(tree)
        baseline = tree / "lint-baseline.json"
        run_cli(tree, "--baseline", baseline, "--write-baseline")
        (tree / "pkg" / "old.py").write_text(
            "# a new comment block\n# shifting every line down\nx = 0\n"
            + OLD_VIOLATION
        )
        assert run_cli(tree, "--baseline", baseline) == 0

    def test_fixing_the_violation_keeps_passing(self, tree, monkeypatch):
        monkeypatch.chdir(tree)
        baseline = tree / "lint-baseline.json"
        run_cli(tree, "--baseline", baseline, "--write-baseline")
        (tree / "pkg" / "old.py").write_text("x = 1\n")
        assert run_cli(tree, "--baseline", baseline) == 0

    def test_suppressed_violations_not_baselined(self, tree, monkeypatch):
        monkeypatch.chdir(tree)
        (tree / "pkg" / "old.py").write_text(
            "import random  # repro-lint: ignore[DET001] fixture\n"
        )
        baseline = tree / "lint-baseline.json"
        run_cli(tree, "--baseline", baseline, "--write-baseline")
        document = json.loads(baseline.read_text())
        assert document["entries"] == {}


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        violations = [
            Violation("DET001", "m", "a.py", 1, 0, "import random"),
            Violation("DET001", "m", "a.py", 2, 0, "import random"),
            Violation("DET003", "m", "b.py", 9, 4, "list(set(x))"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(path, violations)
        counts = load_baseline(path)
        assert sum(counts.values()) == 3
        new, grandfathered = split_by_baseline(violations, counts)
        assert new == [] and len(grandfathered) == 3

    def test_excess_occurrences_are_new(self, tmp_path):
        first = Violation("DET001", "m", "a.py", 1, 0, "import random")
        second = Violation("DET001", "m", "a.py", 5, 0, "import random")
        path = tmp_path / "baseline.json"
        write_baseline(path, [first])
        new, grandfathered = split_by_baseline([first, second], load_baseline(path))
        assert [v.line for v in grandfathered] == [1]
        assert [v.line for v in new] == [5]

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(tmp_path / "absent.json")

    @pytest.mark.parametrize(
        "content",
        ["not json", '{"version": 99, "entries": {}}', '{"version": 1, "entries": {"k": 0}}'],
    )
    def test_bad_baseline_raises(self, tmp_path, content):
        path = tmp_path / "baseline.json"
        path.write_text(content)
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestCliContract:
    def test_missing_path_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["no-such-dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_bad_baseline_exits_2(self, tree, monkeypatch, capsys):
        monkeypatch.chdir(tree)
        bad = tree / "bad.json"
        bad.write_text("{")
        assert run_cli(tree, "--baseline", bad) == 2

    def test_unparsable_file_exits_1(self, tree, monkeypatch, capsys):
        monkeypatch.chdir(tree)
        (tree / "pkg" / "old.py").write_text("x = 1\n")
        (tree / "pkg" / "broken.py").write_text("def f(:\n")
        assert run_cli(tree) == 1
        assert "PARSE error" in capsys.readouterr().out

    def test_json_output_shape(self, tree, monkeypatch, capsys):
        monkeypatch.chdir(tree)
        assert run_cli(tree, "--format", "json") == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["files_checked"] == 2
        [violation] = document["new"]
        assert violation["code"] == "DET001"
        assert violation["path"].endswith("old.py")
        assert "fingerprint" in violation

    def test_text_output_positions(self, tree, monkeypatch, capsys):
        monkeypatch.chdir(tree)
        run_cli(tree)
        out = capsys.readouterr().out
        assert "old.py:1:1: DET001" in out
        assert "1 new, 0 baselined, 0 suppressed" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004", "ASYNC001", "EXC001"):
            assert code in out
