"""Per-rule fixture tests for the determinism lint.

Each rule gets three snippets: one seeded violation it must catch, one
clean equivalent it must not flag, and one suppressed violation an inline
``# repro-lint: ignore[CODE]`` comment must silence. Scope tests assert the
per-package applicability (DET002 only in simulated-time packages,
ASYNC001 only in runtime/).
"""

import pytest

from repro.lint import PROJECT_RULES, RULES, lint_project, lint_source


def codes(violations):
    return [v.code for v in violations]


def check(source, module="repro.sim.fixture"):
    """Active (unsuppressed) violations for one snippet."""
    active, _ = lint_source(source, module=module)
    return active


def check_suppressed(source, module="repro.sim.fixture"):
    active, suppressed = lint_source(source, module=module)
    return active, suppressed


class TestRegistry:
    def test_all_rules_registered(self):
        assert {r.code for r in RULES} == {
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "ASYNC001",
            "ASYNC002",
            "ASYNC003",
            "EXC001",
        }

    def test_all_project_rules_registered(self):
        assert {r.code for r in PROJECT_RULES} == {
            "CONTRACT001",
            "CONTRACT002",
            "CONTRACT003",
            "CONTRACT004",
            "CONTRACT005",
        }

    def test_rules_have_summaries(self):
        assert all(r.summary for r in RULES)
        assert all(r.summary for r in PROJECT_RULES)


class TestDet001GlobalRandom:
    def test_import_random_flagged(self):
        assert "DET001" in codes(check("import random\n"))

    def test_from_random_import_flagged(self):
        assert "DET001" in codes(check("from random import randrange\n"))

    def test_module_call_flagged(self):
        source = "import random\nx = random.random()\n"
        assert codes(check(source)).count("DET001") == 2  # import + call

    def test_seeded_rng_clean(self):
        source = (
            "from repro.common.rng import derive_rng\n"
            "rng = derive_rng(1, 'net')\n"
            "x = rng.random()\n"
        )
        assert check(source) == []

    def test_common_rng_module_exempt(self):
        assert check("import random\n", module="repro.common.rng") == []

    def test_suppression_silences(self):
        source = "import random  # repro-lint: ignore[DET001] typing-only fixture\n"
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET001"]


class TestDet002WallClock:
    def test_time_monotonic_flagged(self):
        source = "import time\n\ndef f():\n    return time.monotonic()\n"
        assert codes(check(source)) == ["DET002"]

    def test_aliased_import_flagged(self):
        source = "from time import monotonic as clock\n\ndef f():\n    return clock()\n"
        assert codes(check(source)) == ["DET002"]

    def test_datetime_now_flagged(self):
        source = (
            "from datetime import datetime\n\ndef f():\n    return datetime.now()\n"
        )
        assert codes(check(source)) == ["DET002"]

    @pytest.mark.parametrize(
        "package", ["dag", "core", "broadcast", "baselines", "obs"]
    )
    def test_applies_across_simulated_time_packages(self, package):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert codes(check(source, module=f"repro.{package}.fixture")) == ["DET002"]

    def test_obs_package_in_scope(self):
        # Events are stamped with sim time so traces stay bit-reproducible;
        # a wall-clock read inside the observability layer must be flagged.
        source = (
            "import time\n\n"
            "def stamp(event):\n"
            "    return time.perf_counter()\n"
        )
        assert codes(check(source, module="repro.obs.fixture")) == ["DET002"]

    def test_perf_package_out_of_scope(self):
        # perf/ measures real wall-clock on purpose; the rule must not fire.
        source = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert check(source, module="repro.perf.fixture") == []

    def test_scheduler_clock_clean(self):
        source = "def f(scheduler):\n    return scheduler.now\n"
        assert check(source) == []

    def test_suppression_silences(self):
        source = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-lint: ignore[DET002] logging only\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET002"]


class TestDet003SetOrderEscape:
    def test_for_over_set_literal_flagged(self):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        assert codes(check(source)) == ["DET003"]

    def test_list_of_set_call_flagged(self):
        source = "def f(items):\n    return list(set(items))\n"
        assert codes(check(source)) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        source = "def f(items):\n    return [x for x in set(items)]\n"
        assert codes(check(source)) == ["DET003"]

    def test_join_over_set_flagged(self):
        source = "def f(items):\n    return ','.join({str(i) for i in items})\n"
        assert codes(check(source)) == ["DET003"]

    def test_set_algebra_flagged(self):
        source = "def f(a, b):\n    return list(set(a) - set(b))\n"
        assert codes(check(source)) == ["DET003"]

    def test_sorted_wrapper_clean(self):
        source = (
            "def f(items):\n"
            "    for x in sorted(set(items)):\n"
            "        print(x)\n"
            "    return sorted({i for i in items})\n"
        )
        assert check(source) == []

    def test_membership_and_len_clean(self):
        # Non-iterating set use is the whole point of sets; never flagged.
        source = "def f(items, x):\n    s = set(items)\n    return x in s, len(s)\n"
        assert check(source) == []

    def test_set_typed_local_iteration_flagged(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    for x in s:\n"
            "        print(x)\n"
        )
        assert codes(check(source)) == ["DET003"]

    def test_set_typed_local_list_escape_flagged(self):
        source = "def f(items):\n    s = {i for i in items}\n    return list(s)\n"
        assert codes(check(source)) == ["DET003"]

    def test_set_typed_local_sorted_clean(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    return sorted(s)\n"
        )
        assert check(source) == []

    def test_local_with_non_set_rebinding_clean(self):
        # One non-set assignment makes the local's type statically unknown.
        source = (
            "def f(items, flag):\n"
            "    s = set(items)\n"
            "    if flag:\n"
            "        s = load(items)\n"
            "    return list(s)\n"
        )
        assert check(source) == []

    def test_in_place_set_algebra_keeps_local_flagged(self):
        source = (
            "def f(items, extra):\n"
            "    s = set(items)\n"
            "    s |= extra\n"
            "    return list(s)\n"
        )
        assert codes(check(source)) == ["DET003"]

    def test_non_set_aug_assign_clean(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    s += [1]\n"
            "    return list(s)\n"
        )
        assert check(source) == []

    def test_parameter_never_set_typed(self):
        source = "def f(s):\n    return list(s)\n"
        assert check(source) == []

    def test_nested_scope_locals_not_confused(self):
        # The inner function's `s` is a parameter, not the outer set local.
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    def g(s):\n"
            "        return list(s)\n"
            "    return g(sorted(s))\n"
        )
        assert check(source) == []

    def test_set_typed_local_suppression_silences(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    # repro-lint: ignore[DET003] all elements identical\n"
            "    return list(s)\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET003"]

    def test_suppression_silences(self):
        source = (
            "def f(items):\n"
            "    # repro-lint: ignore[DET003] all elements identical\n"
            "    return list(set(items))\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET003"]


class TestDet004IdentityOrder:
    def test_sorted_key_id_flagged(self):
        assert codes(check("def f(items):\n    return sorted(items, key=id)\n")) == [
            "DET004"
        ]

    def test_sort_lambda_id_flagged(self):
        source = "def f(items):\n    items.sort(key=lambda v: id(v))\n"
        assert codes(check(source)) == ["DET004"]

    def test_ordered_id_comparison_flagged(self):
        source = "def f(a, b):\n    return id(a) < id(b)\n"
        assert codes(check(source)) == ["DET004"]

    def test_id_as_mapping_key_flagged(self):
        source = "def f(d, v):\n    d[id(v)] = v\n"
        assert codes(check(source)) == ["DET004"]

    def test_stable_key_clean(self):
        source = (
            "def f(items, a, b):\n"
            "    items.sort(key=lambda v: v.name)\n"
            "    return sorted(items, key=str), a is b\n"
        )
        assert check(source) == []

    def test_suppression_silences(self):
        source = (
            "def f(items):\n"
            "    return sorted(items, key=id)  "
            "# repro-lint: ignore[DET004] debug dump only\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET004"]


class TestAsync001Blocking:
    RUNTIME = "repro.runtime.fixture"

    def test_time_sleep_in_coroutine_flagged(self):
        source = "import time\n\nasync def f():\n    time.sleep(1)\n"
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_subprocess_run_flagged(self):
        source = "import subprocess\n\nasync def f():\n    subprocess.run(['ls'])\n"
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_open_in_coroutine_flagged(self):
        source = "async def f(path):\n    return open(path).read()\n"
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_nested_coroutine_flagged(self):
        source = (
            "import time\n\n"
            "async def outer():\n"
            "    async def inner():\n"
            "        time.sleep(1)\n"
            "    await inner()\n"
        )
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_asyncio_sleep_clean(self):
        source = "import asyncio\n\nasync def f():\n    await asyncio.sleep(1)\n"
        assert check(source, module=self.RUNTIME) == []

    def test_sync_closure_skipped(self):
        # A sync def inside a coroutine may run in an executor; not flagged.
        source = (
            "import time\n\n"
            "async def f(loop):\n"
            "    def blocking():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, blocking)\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_sync_function_out_of_scope(self):
        assert check("import time\n\ndef f():\n    time.sleep(1)\n",
                     module=self.RUNTIME) == []

    def test_other_packages_out_of_scope(self):
        source = "import time\n\nasync def f():\n    time.sleep(1)\n"
        assert check(source, module="repro.perf.fixture") == []

    def test_suppression_silences(self):
        source = (
            "import time\n\n"
            "async def f():\n"
            "    time.sleep(0)  # repro-lint: ignore[ASYNC001] yields, test shim\n"
        )
        active, suppressed = check_suppressed(source, module=self.RUNTIME)
        assert active == []
        assert codes(suppressed) == ["ASYNC001"]


class TestAsync002AwaitStraddlingWrite:
    RUNTIME = "repro.runtime.fixture"

    def test_stale_read_write_across_await_flagged(self):
        source = (
            "class C:\n"
            "    async def f(self):\n"
            "        snapshot = self.count\n"
            "        await self.flush()\n"
            "        self.count = snapshot + 1\n"
        )
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC002"]

    def test_single_statement_rmw_across_await_flagged(self):
        source = (
            "class C:\n"
            "    async def f(self):\n"
            "        self.count = await merge(self.count)\n"
        )
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC002"]

    def test_read_in_branch_write_after_flagged(self):
        source = (
            "class C:\n"
            "    async def f(self, flag):\n"
            "        if flag:\n"
            "            stale = self.cursor\n"
            "            await self.flush()\n"
            "            self.cursor = stale + 1\n"
        )
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC002"]

    def test_write_re_reading_attr_clean(self):
        # The shipped redelivery pattern: the write derives from a *fresh*
        # read of the attribute, so no update can be lost.
        source = (
            "class C:\n"
            "    async def f(self, seq):\n"
            "        redelivery = seq <= self.ever_written\n"
            "        await self.write(seq)\n"
            "        self.ever_written = max(self.ever_written, seq)\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_no_await_between_read_and_write_clean(self):
        source = (
            "class C:\n"
            "    async def f(self):\n"
            "        snapshot = self.count\n"
            "        self.count = snapshot + 1\n"
            "        await self.flush()\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_plain_overwrite_after_await_clean(self):
        # A write whose value never came from the attribute is a plain
        # overwrite, not a lost update.
        source = (
            "class C:\n"
            "    async def f(self):\n"
            "        await self.server.wait_closed()\n"
            "        self.server = None\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_subscript_store_clean(self):
        # In-place container mutation is rebind-free; out of scope.
        source = (
            "class C:\n"
            "    async def f(self, src):\n"
            "        seen = self.cursor[src]\n"
            "        await self.flush()\n"
            "        self.cursor[src] = seen + 1\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_nested_async_def_is_a_fresh_frame(self):
        source = (
            "class C:\n"
            "    async def f(self):\n"
            "        snapshot = self.count\n"
            "        async def g():\n"
            "            await self.flush()\n"
            "        self.count = snapshot + 1\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_other_packages_out_of_scope(self):
        source = (
            "class C:\n"
            "    async def f(self):\n"
            "        snapshot = self.count\n"
            "        await self.flush()\n"
            "        self.count = snapshot + 1\n"
        )
        assert check(source, module="repro.core.fixture") == []

    def test_suppression_silences(self):
        source = (
            "class C:\n"
            "    async def f(self):\n"
            "        snapshot = self.count\n"
            "        await self.flush()\n"
            "        # repro-lint: ignore[ASYNC002] single-writer coroutine\n"
            "        self.count = snapshot + 1\n"
        )
        active, suppressed = check_suppressed(source, module=self.RUNTIME)
        assert active == []
        assert codes(suppressed) == ["ASYNC002"]


class TestAsync003FireAndForgetTask:
    RUNTIME = "repro.runtime.fixture"

    def test_unsupervised_binding_flagged(self):
        source = (
            "class C:\n"
            "    def start(self, loop):\n"
            "        self.task = loop.create_task(self.run())\n"
        )
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC003"]

    def test_discarded_reference_flagged(self):
        source = "def start(loop, coro):\n    loop.create_task(coro)\n"
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC003"]

    def test_ensure_future_flagged(self):
        source = (
            "import asyncio\n"
            "def start(coro):\n"
            "    fut = asyncio.ensure_future(coro)\n"
        )
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC003"]

    def test_done_callback_on_binding_clean(self):
        source = (
            "class C:\n"
            "    def start(self, loop):\n"
            "        self.task = loop.create_task(self.run())\n"
            "        self.task.add_done_callback(self.on_done)\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_chained_done_callback_clean(self):
        source = (
            "def start(loop, coro, cb):\n"
            "    loop.create_task(coro).add_done_callback(cb)\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_awaited_spawn_clean(self):
        source = (
            "import asyncio\n"
            "async def run(coro):\n"
            "    await asyncio.create_task(coro)\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_returned_task_clean(self):
        source = "def start(loop, coro):\n    return loop.create_task(coro)\n"
        assert check(source, module=self.RUNTIME) == []

    def test_task_handed_to_gather_clean(self):
        source = (
            "import asyncio\n"
            "async def run(loop, a, b):\n"
            "    await asyncio.gather(loop.create_task(a), loop.create_task(b))\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_other_packages_out_of_scope(self):
        source = "def start(loop, coro):\n    loop.create_task(coro)\n"
        assert check(source, module="repro.perf.fixture") == []

    def test_suppression_silences(self):
        source = (
            "def start(loop, coro):\n"
            "    loop.create_task(coro)  "
            "# repro-lint: ignore[ASYNC003] test harness, loop dies with it\n"
        )
        active, suppressed = check_suppressed(source, module=self.RUNTIME)
        assert active == []
        assert codes(suppressed) == ["ASYNC003"]


# --------------------------------------------------------- project fixtures

OBS_DOC_OK = (
    "# Observability\n"
    "\n"
    "## Event catalog\n"
    "\n"
    "| kind | fields |\n"
    "|------|--------|\n"
    "| `commit` | `wave` |\n"
    "\n"
    "## Metric catalog\n"
    "\n"
    "| name | type |\n"
    "|------|------|\n"
    "| `node.commits` | counter |\n"
)

EMITTER = (
    "class Node:\n"
    "    def deliver(self, wave):\n"
    "        self.obs.emit(self.pid, 'commit', wave=wave)\n"
    "        self.obs.registry.counter('node.commits').inc()\n"
)


def fixture_codec(
    *, heartbeat_tag=2, decoders_complete=True, payload_arm=True
):
    decoders = "1: _dec_ack, 2: _dec_hb" if decoders_complete else "1: _dec_ack"
    arm = "    if tag == 1:\n        return Vertex.from_bytes(body)\n" if payload_arm else ""
    return (
        "from repro.codec.frames import LinkAck, LinkHeartbeat\n"
        "from repro.dag.vertex import Vertex\n"
        "\n"
        "_REGISTRY = {\n"
        "    LinkAck: (1, _enc_ack),\n"
        f"    LinkHeartbeat: ({heartbeat_tag}, _enc_hb),\n"
        "}\n"
        f"_DECODERS = {{{decoders}}}\n"
        "_PAYLOAD_TAGS = {Vertex: 1}\n"
        "\n"
        "def _decode_payload(reader):\n"
        "    tag = reader.take(1)[0]\n"
        "    if tag == 0:\n"
        "        return None\n"
        f"{arm}"
        "    raise ValueError(tag)\n"
    )


DISPATCHER_FULL = (
    "from repro.codec.frames import LinkAck, LinkHeartbeat\n"
    "from repro.dag.vertex import Vertex\n"
    "\n"
    "def on_frame(message):\n"
    "    if isinstance(message, LinkAck):\n"
    "        return 'ack'\n"
    "    if isinstance(message, LinkHeartbeat):\n"
    "        return 'hb'\n"
    "    if isinstance(message, Vertex):\n"
    "        return 'vertex'\n"
)


class TestContract001FrameDispatch:
    def test_clean_when_every_frame_dispatched(self):
        violations = lint_project(
            {
                "repro.codec.registry": fixture_codec(),
                "repro.runtime.transport": DISPATCHER_FULL,
            }
        )
        assert violations == []

    def test_missing_dispatch_flagged_at_registry_entry(self):
        dispatcher = DISPATCHER_FULL.replace(
            "    if isinstance(message, LinkHeartbeat):\n        return 'hb'\n",
            "",
        )
        violations = lint_project(
            {
                "repro.codec.registry": fixture_codec(),
                "repro.runtime.transport": dispatcher,
            }
        )
        assert codes(violations) == ["CONTRACT001"]
        assert "LinkHeartbeat" in violations[0].message
        assert violations[0].path == "src/repro/codec/registry.py"

    def test_duplicate_tag_flagged(self):
        violations = lint_project(
            {
                "repro.codec.registry": fixture_codec(heartbeat_tag=1),
                "repro.runtime.transport": DISPATCHER_FULL,
            }
        )
        assert any(
            v.code == "CONTRACT001" and "already used" in v.message
            for v in violations
        )

    def test_missing_decoder_flagged(self):
        violations = lint_project(
            {
                "repro.codec.registry": fixture_codec(decoders_complete=False),
                "repro.runtime.transport": DISPATCHER_FULL,
            }
        )
        assert any(
            v.code == "CONTRACT001" and "no decoder" in v.message
            for v in violations
        )

    def test_missing_payload_arm_flagged(self):
        violations = lint_project(
            {
                "repro.codec.registry": fixture_codec(payload_arm=False),
                "repro.runtime.transport": DISPATCHER_FULL,
            }
        )
        assert any(
            v.code == "CONTRACT001" and "_decode_payload" in v.message
            for v in violations
        )

    def test_typed_handler_counts_as_dispatch(self):
        dispatcher = (
            "from repro.codec.frames import LinkAck, LinkHeartbeat\n"
            "from repro.dag.vertex import Vertex\n"
            "\n"
            "class Sink:\n"
            "    def handle(self, src: int, message: LinkAck):\n"
            "        pass\n"
            "\n"
            "def on_frame(message):\n"
            "    if isinstance(message, (LinkHeartbeat, Vertex)):\n"
            "        return True\n"
        )
        violations = lint_project(
            {
                "repro.codec.registry": fixture_codec(),
                "repro.runtime.transport": dispatcher,
            }
        )
        assert violations == []

    def test_self_attr_alias_counts_as_dispatch(self):
        # The lazy-import idiom from core/node.py: the class is bound to an
        # instance attribute and dispatched through it.
        dispatcher = (
            "from repro.dag.vertex import Vertex\n"
            "\n"
            "class Sink:\n"
            "    def __init__(self):\n"
            "        from repro.codec.frames import LinkAck, LinkHeartbeat\n"
            "        self._ack_cls = LinkAck\n"
            "        self._hb_cls = LinkHeartbeat\n"
            "    def on_message(self, message):\n"
            "        if isinstance(message, self._ack_cls):\n"
            "            return 'ack'\n"
            "        if isinstance(message, self._hb_cls):\n"
            "            return 'hb'\n"
            "        if isinstance(message, Vertex):\n"
            "            return 'vertex'\n"
        )
        violations = lint_project(
            {
                "repro.codec.registry": fixture_codec(),
                "repro.runtime.transport": dispatcher,
            }
        )
        assert violations == []

    def test_codec_internal_isinstance_is_not_evidence(self):
        codec_only = {
            "repro.codec.registry": fixture_codec() + (
                "\n"
                "def roundtrip(message):\n"
                "    assert isinstance(message, LinkAck)\n"
                "    assert isinstance(message, LinkHeartbeat)\n"
                "    assert isinstance(message, Vertex)\n"
            )
        }
        violations = lint_project(codec_only)
        assert codes(violations) == ["CONTRACT001"] * 3

    def test_absent_registry_module_is_quiet(self):
        assert lint_project({"repro.runtime.transport": DISPATCHER_FULL}) == []

    def test_suppression_silences(self):
        codec = fixture_codec().replace(
            "    LinkAck: (1, _enc_ack),\n",
            "    # repro-lint: ignore[CONTRACT001] fixture frame, sim-only\n"
            "    LinkAck: (1, _enc_ack),\n",
        )
        dispatcher = DISPATCHER_FULL.replace(
            "    if isinstance(message, LinkAck):\n        return 'ack'\n", ""
        )
        sources = {
            "repro.codec.registry": codec,
            "repro.runtime.transport": dispatcher,
        }
        assert lint_project(sources) == []


class TestContract002EventCatalog:
    def test_documented_and_emitted_clean(self):
        violations = lint_project(
            {"repro.core.fixture": EMITTER}, docs={"docs/observability.md": OBS_DOC_OK}
        )
        assert violations == []

    def test_undocumented_kind_flagged_at_emit_site(self):
        doc = OBS_DOC_OK.replace("| `commit` | `wave` |\n", "")
        violations = lint_project(
            {"repro.core.fixture": EMITTER}, docs={"docs/observability.md": doc}
        )
        assert codes(violations) == ["CONTRACT002"]
        assert violations[0].path == "src/repro/core/fixture.py"
        assert "commit" in violations[0].message

    def test_stale_doc_row_flagged_at_doc_line(self):
        doc = OBS_DOC_OK.replace(
            "| `commit` | `wave` |\n",
            "| `commit` | `wave` |\n| `ghost_event` | — |\n",
        )
        violations = lint_project(
            {"repro.core.fixture": EMITTER}, docs={"docs/observability.md": doc}
        )
        assert codes(violations) == ["CONTRACT002"]
        assert violations[0].path == "docs/observability.md"
        assert "ghost_event" in violations[0].message

    def test_missing_doc_flagged(self):
        violations = lint_project({"repro.core.fixture": EMITTER})
        assert "CONTRACT002" in codes(violations)


class TestContract003MetricCatalog:
    def test_undocumented_metric_flagged(self):
        doc = OBS_DOC_OK.replace("| `node.commits` | counter |\n", "")
        violations = lint_project(
            {"repro.core.fixture": EMITTER}, docs={"docs/observability.md": doc}
        )
        assert codes(violations) == ["CONTRACT003"]

    def test_stale_metric_row_flagged(self):
        doc = OBS_DOC_OK.replace(
            "| `node.commits` | counter |\n",
            "| `node.commits` | counter |\n| `ghost.metric` | counter |\n",
        )
        violations = lint_project(
            {"repro.core.fixture": EMITTER}, docs={"docs/observability.md": doc}
        )
        assert codes(violations) == ["CONTRACT003"]
        assert violations[0].path == "docs/observability.md"

    def test_conflicting_instrument_kinds_flagged(self):
        source = EMITTER + (
            "    def timing(self, v):\n"
            "        self.obs.registry.histogram('node.commits').record(v)\n"
        )
        violations = lint_project(
            {"repro.core.fixture": source},
            docs={"docs/observability.md": OBS_DOC_OK},
        )
        assert any(
            v.code == "CONTRACT003" and "instrument" in v.message
            for v in violations
        )


JOURNAL_OK = (
    "from repro.storage.wal import WAL_COMMIT, WAL_VERTEX\n"
    "\n"
    "class Journal:\n"
    "    def record_vertex(self, data):\n"
    "        self.wal.append(WAL_VERTEX, data)\n"
    "    def record_commit(self, data):\n"
    "        self.wal.append(WAL_COMMIT, data)\n"
    "\n"
    "def recover_node(journal):\n"
    "    for record in journal.tail_records:\n"
    "        if record.kind == WAL_VERTEX:\n"
    "            pass\n"
    "        elif record.kind == WAL_COMMIT:\n"
    "            pass\n"
)


class TestContract004WalReplay:
    def test_written_and_replayed_clean(self):
        assert lint_project({"repro.storage.journal": JOURNAL_OK}) == []

    def test_missing_replay_arm_flagged_at_append(self):
        source = JOURNAL_OK.replace(
            "        elif record.kind == WAL_COMMIT:\n            pass\n", ""
        )
        violations = lint_project({"repro.storage.journal": source})
        assert codes(violations) == ["CONTRACT004"]
        assert "WAL_COMMIT" in violations[0].message
        assert "no replay" in violations[0].message

    def test_unwritten_replay_arm_flagged_at_compare(self):
        source = JOURNAL_OK.replace(
            "from repro.storage.wal import WAL_COMMIT, WAL_VERTEX\n",
            "from repro.storage.wal import WAL_COMMIT, WAL_CREATED, WAL_VERTEX\n",
        ).replace(
            "        elif record.kind == WAL_COMMIT:\n",
            "        elif record.kind == WAL_CREATED:\n"
            "            pass\n"
            "        elif record.kind == WAL_COMMIT:\n",
        )
        violations = lint_project({"repro.storage.journal": source})
        assert codes(violations) == ["CONTRACT004"]
        assert "WAL_CREATED" in violations[0].message

    def test_absent_journal_module_is_quiet(self):
        assert lint_project({"repro.storage.wal": "WAL_VERTEX = 1\n"}) == []


RUNNER_OK = (
    "class ControlServer:\n"
    "    def _dispatch(self, request):\n"
    "        command = request.get('cmd')\n"
    "        if command == 'ping':\n"
    "            return {'ok': True}\n"
    "        if command == 'stop':\n"
    "            return {'ok': True}\n"
    "        return {'error': 'unknown'}\n"
)

FABRIC_OK = (
    "def drive(call, address):\n"
    "    call(address, {'cmd': 'ping'})\n"
    "    call(address, {'cmd': 'stop'})\n"
)


class TestContract005ControlProtocol:
    def test_served_and_issued_clean(self):
        sources = {
            "repro.runtime.runner": RUNNER_OK,
            "repro.runtime.fabric": FABRIC_OK,
        }
        assert lint_project(sources) == []

    def test_served_but_never_issued_flagged(self):
        fabric = FABRIC_OK.replace("    call(address, {'cmd': 'stop'})\n", "")
        violations = lint_project(
            {"repro.runtime.runner": RUNNER_OK, "repro.runtime.fabric": fabric}
        )
        assert codes(violations) == ["CONTRACT005"]
        assert violations[0].path == "src/repro/runtime/runner.py"
        assert "stop" in violations[0].message

    def test_issued_but_never_served_flagged(self):
        fabric = FABRIC_OK + "    call(address, {'cmd': 'drain'})\n"
        violations = lint_project(
            {"repro.runtime.runner": RUNNER_OK, "repro.runtime.fabric": fabric}
        )
        assert codes(violations) == ["CONTRACT005"]
        assert violations[0].path == "src/repro/runtime/fabric.py"
        assert "drain" in violations[0].message

    def test_absent_fabric_module_is_quiet(self):
        assert lint_project({"repro.runtime.runner": RUNNER_OK}) == []


class TestExc001SwallowedFaults:
    def test_bare_except_flagged(self):
        source = "try:\n    f()\nexcept:\n    handle()\n"
        assert codes(check(source)) == ["EXC001"]

    def test_except_exception_pass_flagged(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert codes(check(source)) == ["EXC001"]

    def test_except_base_exception_ellipsis_flagged(self):
        source = "try:\n    f()\nexcept BaseException:\n    ...\n"
        assert codes(check(source)) == ["EXC001"]

    def test_named_exception_clean(self):
        source = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert check(source) == []

    def test_handled_catch_all_clean(self):
        source = (
            "try:\n"
            "    f()\n"
            "except Exception as exc:\n"
            "    log(exc)\n"
            "    raise\n"
        )
        assert check(source) == []

    def test_suppression_silences(self):
        source = (
            "try:\n"
            "    f()\n"
            "except Exception:  # repro-lint: ignore[EXC001] best-effort close\n"
            "    pass\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["EXC001"]


class TestSuppressionMechanics:
    def test_multi_code_suppression(self):
        source = (
            "import random  # repro-lint: ignore[DET001,DET002] fixture\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET001"]

    def test_wrong_code_does_not_silence(self):
        source = "import random  # repro-lint: ignore[DET002] wrong code\n"
        active, _ = check_suppressed(source)
        assert codes(active) == ["DET001"]

    def test_standalone_comment_covers_next_statement(self):
        source = (
            "# repro-lint: ignore[DET003] singleton set\n"
            "values = list({1})\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET003"]

    def test_violation_positions_reported(self):
        active = check("import random\n")
        violation = active[0]
        assert (violation.line, violation.code) == (1, "DET001")
        assert violation.snippet == "import random"
