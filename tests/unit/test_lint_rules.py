"""Per-rule fixture tests for the determinism lint.

Each rule gets three snippets: one seeded violation it must catch, one
clean equivalent it must not flag, and one suppressed violation an inline
``# repro-lint: ignore[CODE]`` comment must silence. Scope tests assert the
per-package applicability (DET002 only in simulated-time packages,
ASYNC001 only in runtime/).
"""

import pytest

from repro.lint import RULES, lint_source


def codes(violations):
    return [v.code for v in violations]


def check(source, module="repro.sim.fixture"):
    """Active (unsuppressed) violations for one snippet."""
    active, _ = lint_source(source, module=module)
    return active


def check_suppressed(source, module="repro.sim.fixture"):
    active, suppressed = lint_source(source, module=module)
    return active, suppressed


class TestRegistry:
    def test_all_rules_registered(self):
        assert {r.code for r in RULES} == {
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "ASYNC001",
            "EXC001",
        }

    def test_rules_have_summaries(self):
        assert all(r.summary for r in RULES)


class TestDet001GlobalRandom:
    def test_import_random_flagged(self):
        assert "DET001" in codes(check("import random\n"))

    def test_from_random_import_flagged(self):
        assert "DET001" in codes(check("from random import randrange\n"))

    def test_module_call_flagged(self):
        source = "import random\nx = random.random()\n"
        assert codes(check(source)).count("DET001") == 2  # import + call

    def test_seeded_rng_clean(self):
        source = (
            "from repro.common.rng import derive_rng\n"
            "rng = derive_rng(1, 'net')\n"
            "x = rng.random()\n"
        )
        assert check(source) == []

    def test_common_rng_module_exempt(self):
        assert check("import random\n", module="repro.common.rng") == []

    def test_suppression_silences(self):
        source = "import random  # repro-lint: ignore[DET001] typing-only fixture\n"
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET001"]


class TestDet002WallClock:
    def test_time_monotonic_flagged(self):
        source = "import time\n\ndef f():\n    return time.monotonic()\n"
        assert codes(check(source)) == ["DET002"]

    def test_aliased_import_flagged(self):
        source = "from time import monotonic as clock\n\ndef f():\n    return clock()\n"
        assert codes(check(source)) == ["DET002"]

    def test_datetime_now_flagged(self):
        source = (
            "from datetime import datetime\n\ndef f():\n    return datetime.now()\n"
        )
        assert codes(check(source)) == ["DET002"]

    @pytest.mark.parametrize(
        "package", ["dag", "core", "broadcast", "baselines", "obs"]
    )
    def test_applies_across_simulated_time_packages(self, package):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert codes(check(source, module=f"repro.{package}.fixture")) == ["DET002"]

    def test_obs_package_in_scope(self):
        # Events are stamped with sim time so traces stay bit-reproducible;
        # a wall-clock read inside the observability layer must be flagged.
        source = (
            "import time\n\n"
            "def stamp(event):\n"
            "    return time.perf_counter()\n"
        )
        assert codes(check(source, module="repro.obs.fixture")) == ["DET002"]

    def test_perf_package_out_of_scope(self):
        # perf/ measures real wall-clock on purpose; the rule must not fire.
        source = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert check(source, module="repro.perf.fixture") == []

    def test_scheduler_clock_clean(self):
        source = "def f(scheduler):\n    return scheduler.now\n"
        assert check(source) == []

    def test_suppression_silences(self):
        source = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro-lint: ignore[DET002] logging only\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET002"]


class TestDet003SetOrderEscape:
    def test_for_over_set_literal_flagged(self):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        assert codes(check(source)) == ["DET003"]

    def test_list_of_set_call_flagged(self):
        source = "def f(items):\n    return list(set(items))\n"
        assert codes(check(source)) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        source = "def f(items):\n    return [x for x in set(items)]\n"
        assert codes(check(source)) == ["DET003"]

    def test_join_over_set_flagged(self):
        source = "def f(items):\n    return ','.join({str(i) for i in items})\n"
        assert codes(check(source)) == ["DET003"]

    def test_set_algebra_flagged(self):
        source = "def f(a, b):\n    return list(set(a) - set(b))\n"
        assert codes(check(source)) == ["DET003"]

    def test_sorted_wrapper_clean(self):
        source = (
            "def f(items):\n"
            "    for x in sorted(set(items)):\n"
            "        print(x)\n"
            "    return sorted({i for i in items})\n"
        )
        assert check(source) == []

    def test_membership_and_len_clean(self):
        # Non-iterating set use is the whole point of sets; never flagged.
        source = "def f(items, x):\n    s = set(items)\n    return x in s, len(s)\n"
        assert check(source) == []

    def test_set_typed_local_iteration_flagged(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    for x in s:\n"
            "        print(x)\n"
        )
        assert codes(check(source)) == ["DET003"]

    def test_set_typed_local_list_escape_flagged(self):
        source = "def f(items):\n    s = {i for i in items}\n    return list(s)\n"
        assert codes(check(source)) == ["DET003"]

    def test_set_typed_local_sorted_clean(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    return sorted(s)\n"
        )
        assert check(source) == []

    def test_local_with_non_set_rebinding_clean(self):
        # One non-set assignment makes the local's type statically unknown.
        source = (
            "def f(items, flag):\n"
            "    s = set(items)\n"
            "    if flag:\n"
            "        s = load(items)\n"
            "    return list(s)\n"
        )
        assert check(source) == []

    def test_in_place_set_algebra_keeps_local_flagged(self):
        source = (
            "def f(items, extra):\n"
            "    s = set(items)\n"
            "    s |= extra\n"
            "    return list(s)\n"
        )
        assert codes(check(source)) == ["DET003"]

    def test_non_set_aug_assign_clean(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    s += [1]\n"
            "    return list(s)\n"
        )
        assert check(source) == []

    def test_parameter_never_set_typed(self):
        source = "def f(s):\n    return list(s)\n"
        assert check(source) == []

    def test_nested_scope_locals_not_confused(self):
        # The inner function's `s` is a parameter, not the outer set local.
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    def g(s):\n"
            "        return list(s)\n"
            "    return g(sorted(s))\n"
        )
        assert check(source) == []

    def test_set_typed_local_suppression_silences(self):
        source = (
            "def f(items):\n"
            "    s = set(items)\n"
            "    # repro-lint: ignore[DET003] all elements identical\n"
            "    return list(s)\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET003"]

    def test_suppression_silences(self):
        source = (
            "def f(items):\n"
            "    # repro-lint: ignore[DET003] all elements identical\n"
            "    return list(set(items))\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET003"]


class TestDet004IdentityOrder:
    def test_sorted_key_id_flagged(self):
        assert codes(check("def f(items):\n    return sorted(items, key=id)\n")) == [
            "DET004"
        ]

    def test_sort_lambda_id_flagged(self):
        source = "def f(items):\n    items.sort(key=lambda v: id(v))\n"
        assert codes(check(source)) == ["DET004"]

    def test_ordered_id_comparison_flagged(self):
        source = "def f(a, b):\n    return id(a) < id(b)\n"
        assert codes(check(source)) == ["DET004"]

    def test_id_as_mapping_key_flagged(self):
        source = "def f(d, v):\n    d[id(v)] = v\n"
        assert codes(check(source)) == ["DET004"]

    def test_stable_key_clean(self):
        source = (
            "def f(items, a, b):\n"
            "    items.sort(key=lambda v: v.name)\n"
            "    return sorted(items, key=str), a is b\n"
        )
        assert check(source) == []

    def test_suppression_silences(self):
        source = (
            "def f(items):\n"
            "    return sorted(items, key=id)  "
            "# repro-lint: ignore[DET004] debug dump only\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET004"]


class TestAsync001Blocking:
    RUNTIME = "repro.runtime.fixture"

    def test_time_sleep_in_coroutine_flagged(self):
        source = "import time\n\nasync def f():\n    time.sleep(1)\n"
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_subprocess_run_flagged(self):
        source = "import subprocess\n\nasync def f():\n    subprocess.run(['ls'])\n"
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_open_in_coroutine_flagged(self):
        source = "async def f(path):\n    return open(path).read()\n"
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_nested_coroutine_flagged(self):
        source = (
            "import time\n\n"
            "async def outer():\n"
            "    async def inner():\n"
            "        time.sleep(1)\n"
            "    await inner()\n"
        )
        assert codes(check(source, module=self.RUNTIME)) == ["ASYNC001"]

    def test_asyncio_sleep_clean(self):
        source = "import asyncio\n\nasync def f():\n    await asyncio.sleep(1)\n"
        assert check(source, module=self.RUNTIME) == []

    def test_sync_closure_skipped(self):
        # A sync def inside a coroutine may run in an executor; not flagged.
        source = (
            "import time\n\n"
            "async def f(loop):\n"
            "    def blocking():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, blocking)\n"
        )
        assert check(source, module=self.RUNTIME) == []

    def test_sync_function_out_of_scope(self):
        assert check("import time\n\ndef f():\n    time.sleep(1)\n",
                     module=self.RUNTIME) == []

    def test_other_packages_out_of_scope(self):
        source = "import time\n\nasync def f():\n    time.sleep(1)\n"
        assert check(source, module="repro.perf.fixture") == []

    def test_suppression_silences(self):
        source = (
            "import time\n\n"
            "async def f():\n"
            "    time.sleep(0)  # repro-lint: ignore[ASYNC001] yields, test shim\n"
        )
        active, suppressed = check_suppressed(source, module=self.RUNTIME)
        assert active == []
        assert codes(suppressed) == ["ASYNC001"]


class TestExc001SwallowedFaults:
    def test_bare_except_flagged(self):
        source = "try:\n    f()\nexcept:\n    handle()\n"
        assert codes(check(source)) == ["EXC001"]

    def test_except_exception_pass_flagged(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert codes(check(source)) == ["EXC001"]

    def test_except_base_exception_ellipsis_flagged(self):
        source = "try:\n    f()\nexcept BaseException:\n    ...\n"
        assert codes(check(source)) == ["EXC001"]

    def test_named_exception_clean(self):
        source = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert check(source) == []

    def test_handled_catch_all_clean(self):
        source = (
            "try:\n"
            "    f()\n"
            "except Exception as exc:\n"
            "    log(exc)\n"
            "    raise\n"
        )
        assert check(source) == []

    def test_suppression_silences(self):
        source = (
            "try:\n"
            "    f()\n"
            "except Exception:  # repro-lint: ignore[EXC001] best-effort close\n"
            "    pass\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["EXC001"]


class TestSuppressionMechanics:
    def test_multi_code_suppression(self):
        source = (
            "import random  # repro-lint: ignore[DET001,DET002] fixture\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET001"]

    def test_wrong_code_does_not_silence(self):
        source = "import random  # repro-lint: ignore[DET002] wrong code\n"
        active, _ = check_suppressed(source)
        assert codes(active) == ["DET001"]

    def test_standalone_comment_covers_next_statement(self):
        source = (
            "# repro-lint: ignore[DET003] singleton set\n"
            "values = list({1})\n"
        )
        active, suppressed = check_suppressed(source)
        assert active == []
        assert codes(suppressed) == ["DET003"]

    def test_violation_positions_reported(self):
        active = check("import random\n")
        violation = active[0]
        assert (violation.line, violation.code) == (1, "DET001")
        assert violation.snippet == "import random"
