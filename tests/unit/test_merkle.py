"""Merkle tree construction and membership proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.merkle import MerkleTree, verify_proof


class TestMerkleTree:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert verify_proof(tree.root, b"only", 0, tree.proof(0), 1)

    def test_all_proofs_verify(self):
        leaves = [bytes([i]) * 4 for i in range(7)]  # odd count: padding path
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_proof(tree.root, leaf, i, tree.proof(i), len(leaves))

    def test_wrong_leaf_rejected(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, b"x", 0, tree.proof(0), 4)

    def test_wrong_index_rejected(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, b"a", 1, tree.proof(0), 4)

    def test_wrong_root_rejected(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        other = MerkleTree([b"w", b"x", b"y", b"z"])
        assert not verify_proof(other.root, b"a", 0, tree.proof(0), 4)

    def test_truncated_proof_rejected(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, b"a", 0, tree.proof(0)[:-1], 4)

    def test_out_of_range_index(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(IndexError):
            tree.proof(2)
        assert not verify_proof(tree.root, b"a", 5, tree.proof(0), 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_order_matters(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_interior_domain_separation(self):
        """A two-leaf root cannot be replayed as a leaf of a larger tree."""
        inner = MerkleTree([b"a", b"b"])
        outer = MerkleTree([inner.root, b"c"])
        assert not verify_proof(outer.root, b"a", 0, [b"b"] + outer.proof(0), 2)

    @settings(max_examples=40)
    @given(st.lists(st.binary(min_size=0, max_size=20), min_size=1, max_size=33))
    def test_roundtrip_property(self, leaves):
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert verify_proof(tree.root, leaf, i, tree.proof(i), len(leaves))
