"""Network semantics: reliable links, authenticated senders, adversary limits."""

from dataclasses import dataclass

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ProtocolError
from repro.common.rng import derive_rng
from repro.sim.adversary import Adversary, FixedDelay, UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler
from repro.sim.wire import Message


@dataclass(frozen=True)
class Ping(Message):
    body: bytes = b"x"

    def wire_size(self, n: int) -> int:
        return 8 * len(self.body)


class Recorder(Process):
    def __init__(self, pid, network):
        super().__init__(pid, network)
        self.received: list[tuple[int, Message, float]] = []

    def on_message(self, src, message):
        self.received.append((src, message, self.now))


def build(n=4, adversary=None, byzantine=frozenset()):
    config = SystemConfig(n=n, byzantine=byzantine)
    sched = Scheduler()
    net = Network(sched, config, adversary or FixedDelay(1.0))
    nodes = [Recorder(pid, net) for pid in range(n)]
    return sched, net, nodes


class TestDelivery:
    def test_point_to_point(self):
        sched, net, nodes = build()
        net.send(0, 1, Ping())
        sched.run()
        assert len(nodes[1].received) == 1
        src, _msg, at = nodes[1].received[0]
        assert src == 0
        assert at == 1.0

    def test_broadcast_reaches_all_including_self(self):
        sched, net, nodes = build()
        net.broadcast(2, Ping())
        sched.run()
        for node in nodes:
            assert len(node.received) == 1
            assert node.received[0][0] == 2

    def test_self_delivery_is_immediate_and_free(self):
        sched, net, nodes = build()
        net.send(3, 3, Ping())
        sched.run()
        assert nodes[3].received[0][2] == 0.0
        assert net.metrics.correct_bits_total == 0

    def test_unknown_destination_rejected(self):
        config = SystemConfig(n=4)
        net = Network(Scheduler(), config, FixedDelay())
        with pytest.raises(ProtocolError):
            net.send(0, 1, Ping())  # no process registered

    def test_duplicate_registration_rejected(self):
        sched, net, nodes = build()
        with pytest.raises(ProtocolError):
            Recorder(0, net)


class TestMetricsAccounting:
    def test_bits_counted_for_correct_senders(self):
        sched, net, nodes = build()
        net.send(0, 1, Ping(b"abcd"))  # 32 bits
        sched.run()
        assert net.metrics.correct_bits_total == 32

    def test_byzantine_sender_bits_excluded(self):
        sched, net, nodes = build(byzantine=frozenset({0}))
        net.send(0, 1, Ping(b"abcd"))
        net.send(1, 2, Ping(b"abcd"))
        sched.run()
        assert net.metrics.correct_bits_total == 32
        assert net.metrics.total_bits == 64

    def test_time_unit_is_max_correct_delay(self):
        class TwoSpeeds(Adversary):
            def delay(self, src, dst, message, now):
                return 5.0 if src == 0 else 1.0

        sched, net, nodes = build(adversary=TwoSpeeds())
        net.send(0, 1, Ping())
        net.send(1, 2, Ping())
        sched.run()
        assert net.metrics.max_correct_delay == 5.0
        assert net.metrics.time_units(10.0) == 2.0


class TestAdversaryLimits:
    def test_cannot_drop_correct_messages(self):
        class DropAll(Adversary):
            def delay(self, src, dst, message, now):
                return 1.0

            def should_drop(self, src, dst, message, now):
                return True

        sched, net, nodes = build(adversary=DropAll())
        with pytest.raises(ProtocolError):
            net.send(0, 1, Ping())

    def test_can_drop_byzantine_messages(self):
        class DropAll(Adversary):
            def delay(self, src, dst, message, now):
                return 1.0

            def should_drop(self, src, dst, message, now):
                return True

        sched, net, nodes = build(adversary=DropAll(), byzantine=frozenset({1}))
        net.send(1, 0, Ping())
        sched.run()
        assert nodes[0].received == []

    def test_invalid_delay_rejected(self):
        class BadDelay(Adversary):
            def delay(self, src, dst, message, now):
                return float("inf")

        sched, net, nodes = build(adversary=BadDelay())
        with pytest.raises(ProtocolError):
            net.send(0, 1, Ping())

    def test_adaptive_corruption_bounded_by_f(self):
        sched, net, nodes = build()
        net.corrupt(0)
        with pytest.raises(ProtocolError):
            net.corrupt(1)  # f = 1 for n = 4

    def test_adaptive_corruption_drops_in_flight(self):
        class DropOnAsk(Adversary):
            def delay(self, src, dst, message, now):
                return 10.0

            def should_drop(self, src, dst, message, now):
                return True

        sched, net, nodes = build(adversary=DropOnAsk())
        # Sending while still correct: the drop request is refused.
        with pytest.raises(ProtocolError):
            net.send(0, 1, Ping())

    def test_broadcast_prices_wire_size_once(self):
        class CountingPing(Ping):
            computed = 0

            def wire_size(self, n):
                type(self).computed += 1
                return super().wire_size(n)

        sched, net, nodes = build()
        message = CountingPing()
        net.broadcast(0, message)
        # One computation covers all four destinations (cached per object);
        # accounting still charges each of the three wire crossings.
        assert CountingPing.computed == 1
        assert net.metrics.messages_total == 3
        assert net.metrics.total_bits == 3 * message.wire_size(4)
        sched.run()
        assert all(len(node.received) == 1 for node in nodes)

    def test_corrupt_then_queued_messages_dropped(self):
        class DropAfterCorrupt(Adversary):
            def delay(self, src, dst, message, now):
                return 10.0

            def should_drop(self, src, dst, message, now):
                return now > 0.0  # refuse at send time, accept at corrupt time

        sched, net, nodes = build(adversary=DropAfterCorrupt())
        net.send(0, 1, Ping())
        sched.call_at(1.0, lambda: net.corrupt(0))
        sched.run()
        assert nodes[1].received == []


class TestBatchedBroadcastEquivalence:
    """The coalesced fan-out must be observably identical to n sends.

    ``Network.broadcast`` draws drop decisions and delays per destination
    in pid order and schedules one re-arming heap entry per fan-out.
    These tests pin the equivalence the benchmark baseline rests on: same
    seed, batched on vs. off, byte-identical deliveries and metrics.
    """

    @staticmethod
    def _run_broadcasts(batched: bool):
        sched, net, nodes = build(
            n=4, adversary=UniformDelay(derive_rng(7, "delays"))
        )
        net.use_batched_broadcast = batched
        for src in range(4):
            net.broadcast(src, Ping(body=bytes([src])))
        # A fan-out launched mid-run, while earlier ones are still in
        # flight, exercises handle-order tie-breaking between fan-outs.
        sched.call_at(0.5, lambda: net.broadcast(1, Ping(body=b"late")))
        sched.run()
        return (
            [node.received for node in nodes],
            net.metrics.snapshot(),
            sched.now,
        )

    def test_deliveries_and_metrics_match_per_send(self):
        assert self._run_broadcasts(True) == self._run_broadcasts(False)

    @staticmethod
    def _run_corrupt(batched: bool):
        class SeededDrops(Adversary):
            """Refuses at send time; drops ~half at corrupt time.

            A seeded stream makes the test sensitive to the *order* in
            which corrupt() offers in-flight messages to the adversary —
            the batched path promises handle order, i.e. send order.
            """

            def __init__(self):
                self._rng = derive_rng(9, "drops")

            def delay(self, src, dst, message, now):
                return 5.0

            def should_drop(self, src, dst, message, now):
                return now > 0.0 and self._rng.random() < 0.5

        sched, net, nodes = build(n=4, adversary=SeededDrops())
        net.use_batched_broadcast = batched
        net.broadcast(0, Ping(body=b"a"))
        net.broadcast(0, Ping(body=b"b"))
        net.broadcast(2, Ping(body=b"c"))
        sched.call_at(1.0, lambda: net.corrupt(0))
        sched.run()
        return [node.received for node in nodes], sched.now

    def test_corrupt_drops_same_in_flight_messages(self):
        batched, per_send = self._run_corrupt(True), self._run_corrupt(False)
        assert batched == per_send
        # The corruption actually bit: process 2's fan-out survives intact,
        # process 0's in-flight deliveries were thinned.
        deliveries = batched[0]
        assert all(any(src == 2 for src, _, _ in recv) for recv in deliveries)
        from_zero = sum(
            1 for recv in deliveries for src, _, _ in recv if src == 0
        )
        assert 0 < from_zero < 8  # some dropped, not all (seed-dependent)
