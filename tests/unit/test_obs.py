"""Unit tests for the observability layer (``repro.obs``).

Covers the pieces the rest of the repo leans on: typed events with sorted
scalar fields, the clock-injected bus, fixed-bucket histograms (inclusive
upper bounds, overflow), LIFO span nesting, the versioned JSONL export
round-trip, and the trace summarize/diff analysis.
"""

import pytest

from repro.obs import (
    PHASE_COMMIT_WALK,
    PHASE_DELIVER,
    PIPELINE_PHASES,
    Counter,
    Event,
    EventBus,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    SpanTracker,
    TraceFormatError,
    diff_traces,
    dumps_trace,
    filter_events,
    kind_counts,
    loads_trace,
    make_fields,
    summarize,
    wave_stats,
)


class TestEvent:
    def test_fields_sorted_regardless_of_kwarg_order(self):
        bus = EventBus()
        a = bus.emit_at(1.0, 0, "x", beta=2, alpha=1)
        b = bus.emit_at(1.0, 0, "x", alpha=1, beta=2)
        assert a == b
        assert a.fields == (("alpha", 1), ("beta", 2))

    def test_get_returns_field_or_default(self):
        event = Event(0.0, 3, "commit", make_fields({"wave": 4}))
        assert event.get("wave") == 4
        assert event.get("missing", -1) == -1

    def test_detail_is_plain_dict(self):
        event = Event(0.0, 0, "x", make_fields({"b": 2, "a": 1}))
        assert event.detail == {"a": 1, "b": 2}

    def test_non_scalar_field_rejected(self):
        with pytest.raises(TypeError, match="non-scalar"):
            make_fields({"bad": [1, 2, 3]})

    def test_scalars_accepted(self):
        fields = make_fields({"i": 1, "f": 0.5, "s": "x", "b": True, "n": None})
        assert dict(fields) == {"i": 1, "f": 0.5, "s": "x", "b": True, "n": None}


class TestEventBus:
    def test_default_clock_stamps_zero(self):
        bus = EventBus()
        assert bus.emit(0, "tick").time == 0.0

    def test_injected_clock_stamps_emits(self):
        times = iter([1.5, 2.5])
        bus = EventBus(clock=lambda: next(times))
        assert bus.emit(0, "a").time == 1.5
        assert bus.emit(0, "b").time == 2.5

    def test_of_kind_and_kinds(self):
        bus = EventBus()
        bus.emit(0, "a")
        bus.emit(1, "a")
        bus.emit(0, "b")
        assert len(bus.of_kind("a")) == 2
        assert len(bus.of_kind("a", pid=1)) == 1
        assert bus.kinds() == {"a", "b"}
        assert len(bus) == 3

    def test_subscribers_called_synchronously(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        event = bus.emit(0, "x", k=1)
        assert seen == [event]

    def test_observability_attach_clock_first_wins(self):
        class FakeScheduler:
            def __init__(self, now):
                self.now = now

        obs = Observability()
        obs.attach_clock(FakeScheduler(5.0))
        obs.attach_clock(FakeScheduler(99.0))  # second binding ignored
        assert obs.bus.now == 5.0


class TestMetrics:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.max_value == 3.0

    def test_histogram_upper_bounds_inclusive(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.record(1.0)  # lands in le:1 — bounds are inclusive
        hist.record(1.5)  # le:2
        hist.record(2.0)  # le:2
        assert hist.counts == [1, 2, 0]

    def test_histogram_overflow_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.record(100.0)
        assert hist.counts == [0, 0, 1]
        assert hist.bucket_labels() == ["le:1", "le:2", "gt:2"]

    def test_histogram_stats(self):
        hist = Histogram("h", bounds=(10.0,))
        for value in (1.0, 3.0, 8.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 1.0 and hist.max == 8.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_registry_create_or_get(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c")
        with pytest.raises(ValueError, match="different bounds"):
            registry.histogram("h", bounds=(1.0,))
            registry.histogram("h", bounds=(2.0,))

    def test_registry_snapshot_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.histogram("m.lat", bounds=(1.0,)).record(0.5)
        snap = registry.as_dict()
        assert snap["counters"] == {"z.count": 2}
        assert snap["gauges"] == {"a.level": {"max": 1.5, "value": 1.5}}
        assert snap["histograms"]["m.lat"]["buckets"] == {"le:1": 1, "gt:1": 0}


class TestSpans:
    def test_nesting_depth_and_elapsed(self):
        times = iter([0.0, 1.0, 3.0, 6.0])
        bus = EventBus(clock=lambda: next(times))
        spans = SpanTracker(bus)
        outer = spans.begin(0, PHASE_COMMIT_WALK)
        inner = spans.begin(0, PHASE_DELIVER)
        assert spans.depth(0) == 2
        assert spans.end(0, inner) == 2.0  # 3.0 - 1.0
        assert spans.end(0, outer) == 6.0  # 6.0 - 0.0
        begins = bus.of_kind("span_begin")
        assert [event.get("depth") for event in begins] == [0, 1]

    def test_lifo_violation_raises(self):
        spans = SpanTracker(EventBus())
        outer = spans.begin(0, "a")
        spans.begin(0, "b")
        with pytest.raises(ValueError, match="must nest"):
            spans.end(0, outer)

    def test_end_without_open_span_raises(self):
        spans = SpanTracker(EventBus())
        with pytest.raises(ValueError, match="no open span"):
            spans.end(0, 0)

    def test_spans_independent_per_pid(self):
        spans = SpanTracker(EventBus())
        a = spans.begin(0, "x")
        b = spans.begin(1, "x")
        spans.end(0, a)  # pid 1's span is not "innermost" for pid 0
        spans.end(1, b)
        assert spans.depth(0) == 0 and spans.depth(1) == 0

    def test_context_manager_closes_on_exit(self):
        bus = EventBus()
        spans = SpanTracker(bus)
        with spans.span(0, "phase"):
            assert spans.depth(0) == 1
        assert spans.depth(0) == 0
        assert bus.kinds() == {"span_begin", "span_end"}

    def test_pipeline_phases_ordered(self):
        assert PIPELINE_PHASES == (
            "broadcast", "dag_insert", "wave_leader", "commit_walk", "deliver",
        )


class TestExport:
    def _sample_events(self):
        bus = EventBus()
        bus.emit_at(1.0, 0, "wave_ready", wave=1)
        bus.emit_at(2.0, 0, "commit", wave=1, delivered=3)
        bus.emit_at(2.0, 1, "plain")
        return bus.events

    def test_round_trip_preserves_everything(self):
        events = self._sample_events()
        meta = {"cell": "x", "seed": 7}
        metrics = {"counters": {"c": 1}}
        trace = loads_trace(dumps_trace(events, meta=meta, metrics=metrics))
        assert trace.events == events
        assert trace.meta == meta
        assert trace.metrics == metrics

    def test_serialization_is_byte_stable(self):
        events = self._sample_events()
        assert dumps_trace(events) == dumps_trace(list(events))

    def test_rejects_foreign_schema(self):
        with pytest.raises(TraceFormatError, match="schema"):
            loads_trace('{"schema": "something.else", "version": 1}\n')

    def test_rejects_unknown_version(self):
        with pytest.raises(TraceFormatError, match="version"):
            loads_trace('{"schema": "repro.obs.trace", "version": 99}\n')

    def test_rejects_empty_file(self):
        with pytest.raises(TraceFormatError, match="empty"):
            loads_trace("")

    def test_rejects_malformed_event_line(self):
        text = (
            '{"meta": {}, "schema": "repro.obs.trace", "version": 1}\n'
            '{"pid": 0, "t": 1.0}\n'  # no "kind"
        )
        with pytest.raises(TraceFormatError, match="missing key"):
            loads_trace(text)


class TestAnalysis:
    def _trace(self, commit_time=2.0, delivered=3):
        bus = EventBus()
        bus.emit_at(1.0, 0, "wave_ready", wave=1)
        bus.emit_at(1.1, 1, "wave_ready", wave=1)
        bus.emit_at(commit_time, 0, "commit", wave=1, delivered=delivered)
        bus.emit_at(commit_time + 0.5, 1, "commit", wave=1, delivered=delivered)
        return bus.events

    def test_kind_counts_sorted(self):
        counts = kind_counts(self._trace())
        assert list(counts) == ["commit", "wave_ready"]
        assert counts == {"commit": 2, "wave_ready": 2}

    def test_filter_events(self):
        events = self._trace()
        assert len(filter_events(events, kinds=["commit"])) == 2
        assert len(filter_events(events, pids=[0])) == 2
        assert len(filter_events(events, tmin=1.05, tmax=2.0)) == 2

    def test_wave_stats(self):
        stats = wave_stats(self._trace())
        entry = stats[1]
        assert entry.ready_time == 1.0  # earliest wave_ready anywhere
        assert entry.first_commit == 2.0
        assert entry.last_commit == 2.5
        assert entry.latency == pytest.approx(1.5)
        assert entry.committers == 2
        assert entry.delivered == 6

    def test_summarize_mentions_kinds_and_waves(self):
        text = summarize(self._trace(), meta={"cell": "x"})
        assert "cell=x" in text
        assert "wave_ready" in text
        assert "committers" in text

    def test_diff_identical_traces(self):
        diff = diff_traces(self._trace(), self._trace())
        assert diff.identical and diff.empty
        assert "identical" in diff.render()

    def test_diff_reports_kind_only_in_b(self):
        events_b = list(self._trace())
        events_b.append(Event(3.0, 0, "link_redelivery", make_fields({"seq": 1})))
        diff = diff_traces(self._trace(), events_b)
        assert diff.kind_deltas["link_redelivery"] == (0, 1)
        assert "[only in B]" in diff.render()

    def test_diff_reports_wave_latency_change(self):
        diff = diff_traces(self._trace(), self._trace(commit_time=4.0))
        assert not diff.empty
        (change,) = diff.wave_changes
        assert change.wave == 1
        assert "latency" in change.changed

    def test_diff_tolerance_suppresses_small_shifts(self):
        diff = diff_traces(
            self._trace(), self._trace(commit_time=2.01), time_tolerance=0.1
        )
        assert diff.empty

    def test_diff_reports_delivered_change_exactly(self):
        diff = diff_traces(
            self._trace(), self._trace(delivered=4), time_tolerance=10.0
        )
        (change,) = diff.wave_changes
        assert change.changed["delivered"] == (6, 8)
