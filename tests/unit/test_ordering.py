"""Algorithm 3 unit behaviour on hand-built DAGs with a scripted coin."""

from repro.coin.base import CoinProtocol
from repro.common.config import SystemConfig
from repro.core.ordering import DagRiderOrdering
from repro.dag.store import DagStore
from repro.dag.vertex import Ref, Vertex
from repro.mempool.blocks import Block


class ScriptedCoin(CoinProtocol):
    """Coin whose leaders the test chooses; resolution can be delayed."""

    def __init__(self, leaders: dict[int, int], auto=True):
        super().__init__()
        self.leaders = leaders
        self.auto = auto
        self.invoked: list[int] = []

    def invoke(self, instance):
        self.invoked.append(instance)
        if self.auto:
            self.release(instance)

    def release(self, instance):
        self._resolve(instance, self.leaders[instance])


def vertex(round_, source, strong, weak=()):
    return Vertex(
        round_,
        source,
        Block(source, round_, (bytes([source]),)),
        frozenset(strong),
        frozenset(Ref(s, r) for s, r in weak),
    )


def fill_waves(store: DagStore, waves: int, n: int = 4, skip: dict | None = None):
    """Complete ``waves`` full waves where every process references everyone.

    ``skip`` maps round -> set of sources whose vertex is absent there.
    """
    skip = skip or {}
    for round_ in range(1, 4 * waves + 1):
        prev = set(store.round(round_ - 1))
        for source in range(n):
            if source in skip.get(round_, set()):
                continue
            store.add(vertex(round_, source, prev))


def make_ordering(store, leaders, n=4, auto=True):
    config = SystemConfig(n=n, seed=0)
    coin = ScriptedCoin(leaders, auto=auto)
    delivered = []
    ordering = DagRiderOrdering(
        0,
        config,
        store,
        coin,
        a_deliver=lambda b, r, s: delivered.append((r, s)),
    )
    return ordering, coin, delivered


class TestCommitRule:
    def test_full_wave_commits(self):
        store = DagStore(4)
        fill_waves(store, 1)
        ordering, coin, delivered = make_ordering(store, {1: 2})
        ordering.wave_ready(1)
        assert ordering.decided_wave == 1
        assert coin.invoked == [1]
        # Leader's causal history = rounds 1..1 of its wave's first round:
        # every round-1 vertex plus nothing newer.
        assert (1, 2) in delivered

    def test_missing_leader_no_commit(self):
        store = DagStore(4)
        fill_waves(store, 1, skip={1: {3}})  # leader's vertex absent
        ordering, _coin, delivered = make_ordering(store, {1: 3})
        ordering.wave_ready(1)
        assert ordering.decided_wave == 0
        assert delivered == []

    def test_insufficient_support_no_commit(self):
        store = DagStore(4)
        # Round 1 complete; rounds 2-4 built from only 3 vertices that do
        # not include the leader in their ancestry.
        for source in range(4):
            store.add(vertex(1, source, {0, 1, 2, 3}))
        for round_ in (2, 3, 4):
            for source in (0, 1, 2):
                # Strong edges avoid source 3's chain entirely.
                store.add(vertex(round_, source, {0, 1, 2}))
        ordering, _coin, delivered = make_ordering(store, {1: 3})
        # Support for leader (3,1): round-4 vertices reaching it.
        leader = store.get(Ref(3, 1))
        assert ordering.commit_support(1, leader) < 3
        ordering.wave_ready(1)
        assert ordering.decided_wave == 0

    def test_exactly_quorum_support_commits(self):
        store = DagStore(4)
        fill_waves(store, 1, skip={4: {3}})  # 3 vertices in round 4
        ordering, _coin, delivered = make_ordering(store, {1: 0})
        ordering.wave_ready(1)
        assert ordering.decided_wave == 1


class TestWalkBack:
    def test_skipped_wave_committed_retroactively(self):
        """Figure 2: wave 2 misses support; wave 3 commits it first."""
        store = DagStore(4)
        fill_waves(store, 3)
        ordering, coin, delivered = make_ordering(
            store, {1: 0, 2: 1, 3: 2}, auto=False
        )
        # Wave 1 resolves and commits.
        ordering.wave_ready(1)
        coin.release(1)
        assert ordering.decided_wave == 1
        # Wave 2 completes but its coin stays unresolved; wave 3 arrives.
        ordering.wave_ready(2)
        ordering.wave_ready(3)
        assert ordering.decided_wave == 1  # blocked on coin 2
        coin.release(2)
        coin.release(3)
        assert ordering.decided_wave == 3
        # Leaders delivered in wave order: wave 2's leader vertex (1, 5)
        # must be delivered before wave 3's leader vertex (2, 9).
        pos_w2 = delivered.index((5, 1))
        pos_w3 = delivered.index((9, 2))
        assert pos_w2 < pos_w3

    def test_walkback_skips_waves_with_no_strong_path(self):
        store = DagStore(4)
        # Wave 1: complete. Wave 2: leader vertex exists but is isolated —
        # round 5 has 4 vertices but rounds 6-8 reference only sources 0-2
        # and the leader is source 3.
        fill_waves(store, 1)
        prev = set(store.round(4))
        for source in range(4):
            store.add(vertex(5, source, prev))
        for round_ in (6, 7, 8):
            for source in (0, 1, 2):
                store.add(vertex(round_, source, {0, 1, 2}))
        # Wave 3 on top, fully connected to rounds 8.
        for round_ in (9, 10, 11, 12):
            prev = set(store.round(round_ - 1))
            for source in (0, 1, 2):
                store.add(vertex(round_, source, prev))
        ordering, coin, delivered = make_ordering(store, {1: 0, 2: 3, 3: 1})
        ordering.wave_ready(1)
        ordering.wave_ready(2)  # leader (3,5): support < 2f+1, no commit
        assert ordering.decided_wave == 1
        ordering.wave_ready(3)
        assert ordering.decided_wave == 3
        # Wave 2's leader is NOT in wave 3 leader's strong causal past:
        assert (5, 3) not in delivered

    def test_commit_times_monotone_waves_increasing(self):
        store = DagStore(4)
        fill_waves(store, 3)
        ordering, _coin, _delivered = make_ordering(store, {1: 0, 2: 1, 3: 2})
        for wave in (1, 2, 3):
            ordering.wave_ready(wave)
        waves = [record.wave for record in ordering.commits]
        assert waves == sorted(waves)


class TestDelivery:
    def test_no_double_delivery_across_commits(self):
        store = DagStore(4)
        fill_waves(store, 2)
        ordering, _coin, delivered = make_ordering(store, {1: 0, 2: 1})
        ordering.wave_ready(1)
        ordering.wave_ready(2)
        assert len(delivered) == len(set(delivered))

    def test_delivery_order_deterministic(self):
        results = []
        for _ in range(2):
            store = DagStore(4)
            fill_waves(store, 2)
            ordering, _coin, delivered = make_ordering(store, {1: 3, 2: 0})
            ordering.wave_ready(1)
            ordering.wave_ready(2)
            results.append(delivered)
        assert results[0] == results[1]

    def test_genesis_not_delivered(self):
        store = DagStore(4)
        fill_waves(store, 1)
        ordering, _coin, delivered = make_ordering(store, {1: 0})
        ordering.wave_ready(1)
        assert all(round_ > 0 for round_, _source in delivered)

    def test_causal_order_within_commit(self):
        """Every delivered vertex's strong parents were delivered first."""
        store = DagStore(4)
        fill_waves(store, 2)
        ordering, _coin, delivered = make_ordering(store, {1: 2, 2: 3})
        ordering.wave_ready(1)
        ordering.wave_ready(2)
        positions = {key: i for i, key in enumerate(delivered)}
        for round_, source in delivered:
            vtx = store.get(Ref(source, round_))
            for parent in vtx.strong_parents:
                if (round_ - 1, parent) in positions:
                    assert positions[(round_ - 1, parent)] < positions[(round_, source)]

    def test_wave_ready_idempotent(self):
        store = DagStore(4)
        fill_waves(store, 1)
        ordering, coin, delivered = make_ordering(store, {1: 0})
        ordering.wave_ready(1)
        count = len(delivered)
        ordering.wave_ready(1)
        assert len(delivered) == count
        assert coin.invoked == [1]
