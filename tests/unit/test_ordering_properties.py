"""Property tests on the ordering layer's algebraic behaviour.

Two properties no single scenario test pins down:

* **coin-order commutativity** — the delivery log must not depend on the
  order in which coin instances resolve (the threshold coin resolves
  asynchronously, so any interleaving is possible);
* **compaction transparency** — garbage-collecting delivered rounds midway
  through a run must never change what is subsequently delivered.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coin.base import CoinProtocol
from repro.common.config import SystemConfig
from repro.core.ordering import DagRiderOrdering
from repro.dag.store import DagStore
from repro.dag.vertex import Vertex
from repro.mempool.blocks import Block


class ManualCoin(CoinProtocol):
    """Coin whose resolution order the test controls."""

    def __init__(self, leaders):
        super().__init__()
        self.leaders = leaders

    def invoke(self, instance):
        return None  # resolution is driven manually

    def release(self, instance):
        self._resolve(instance, self.leaders[instance])


def build_dag(seed: int, waves: int) -> tuple[DagStore, dict[int, int]]:
    """A randomized complete DAG of ``waves`` waves plus random leaders."""
    rng = random.Random(seed)
    store = DagStore(4)
    for round_ in range(1, 4 * waves + 1):
        prev = sorted(store.round(round_ - 1))
        for source in range(4):
            if round_ > 1 and len(prev) == 4 and rng.random() < 0.15 and source == 3:
                continue  # occasionally a vertex goes missing
            k = max(3, len(prev) - (1 if rng.random() < 0.3 else 0))
            parents = frozenset(rng.sample(prev, k))
            store.add(Vertex(round_, source, Block(source, round_), parents))
    leaders = {w: rng.randrange(4) for w in range(1, waves + 1)}
    return store, leaders


def run_ordering(store, leaders, release_order):
    config = SystemConfig(n=4, seed=0)
    coin = ManualCoin(leaders)
    delivered = []
    ordering = DagRiderOrdering(
        0, config, store, coin, a_deliver=lambda b, r, s: delivered.append((r, s))
    )
    waves = sorted(leaders)
    for wave in waves:
        ordering.wave_ready(wave)
    for wave in release_order:
        coin.release(wave)
    return delivered, ordering.decided_wave


class TestCoinOrderCommutativity:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.randoms(use_true_random=False),
    )
    def test_delivery_independent_of_resolution_order(self, seed, shuffler):
        waves = 4
        store, leaders = build_dag(seed, waves)
        in_order = list(range(1, waves + 1))
        shuffled = in_order[:]
        shuffler.shuffle(shuffled)

        log_a, decided_a = run_ordering(store, leaders, in_order)
        log_b, decided_b = run_ordering(store, leaders, shuffled)
        assert log_a == log_b
        assert decided_a == decided_b


class TestCompactionTransparency:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_mid_run_compaction_preserves_future_deliveries(self, seed):
        waves = 4
        config = SystemConfig(n=4, seed=0)

        def run(compact_after_wave):
            store, leaders = build_dag(seed, waves)
            coin = ManualCoin(leaders)
            delivered = []
            ordering = DagRiderOrdering(
                0, config, store, coin,
                a_deliver=lambda b, r, s: delivered.append((r, s)),
            )
            for wave in range(1, waves + 1):
                ordering.wave_ready(wave)
                coin.release(wave)
                if wave == compact_after_wave and ordering.decided_wave >= wave:
                    # Collect everything strictly below the committed wave's
                    # first round — all of it is delivered by then.
                    horizon = 4 * (wave - 1) + 1
                    if all(
                        ordering.is_delivered(v.ref)
                        for r in range(1, horizon)
                        for v in store.round(r).values()
                    ):
                        ordering.compact_store(horizon)
            return delivered

        baseline = run(compact_after_wave=None)
        for compact_at in (1, 2, 3):
            assert run(compact_at) == baseline
