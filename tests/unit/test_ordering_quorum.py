"""Commit-quorum override (ablation hook) at the ordering-unit level."""

from repro.coin.base import CoinProtocol
from repro.common.config import SystemConfig
from repro.core.ordering import DagRiderOrdering
from repro.dag.store import DagStore
from repro.dag.vertex import Vertex
from repro.mempool.blocks import Block


class FixedCoin(CoinProtocol):
    def __init__(self, leaders):
        super().__init__()
        self.leaders = leaders

    def invoke(self, instance):
        self._resolve(instance, self.leaders[instance])


def build_wave_with_support(support: int) -> DagStore:
    """One wave where exactly ``support`` round-4 vertices reach leader (0,1)."""
    store = DagStore(4)
    for source in range(4):
        store.add(Vertex(1, source, Block(source, 1), frozenset(range(4))))
    # Rounds 2-3: sources 1..3 reference everyone; source 0 absent.
    for round_ in (2, 3):
        prev = set(store.round(round_ - 1))
        for source in (1, 2, 3):
            store.add(Vertex(round_, source, Block(source, round_), frozenset(prev)))
    # Round 4 holds exactly ``support`` vertices, each reaching the leader
    # through round 3 — so commit support equals the round-4 population.
    prev = set(store.round(3))
    for source in range(support):
        store.add(Vertex(4, source, Block(source, 4), frozenset(prev)))
    return store


class TestCommitQuorumOverride:
    def _ordering(self, store, quorum):
        config = SystemConfig(n=4, seed=0)
        delivered = []
        ordering = DagRiderOrdering(
            0,
            config,
            store,
            FixedCoin({1: 0}),
            a_deliver=lambda b, r, s: delivered.append((r, s)),
            commit_quorum=quorum,
        )
        return ordering, delivered

    def test_paper_quorum_needs_2f_plus_1(self):
        store = build_wave_with_support(2)
        ordering, delivered = self._ordering(store, quorum=3)
        ordering.wave_ready(1)
        assert ordering.decided_wave == 0
        assert delivered == []

    def test_weakened_quorum_commits_with_f_plus_1(self):
        store = build_wave_with_support(2)
        ordering, delivered = self._ordering(store, quorum=2)
        ordering.wave_ready(1)
        assert ordering.decided_wave == 1
        assert delivered  # the leader's causal history got delivered

    def test_default_matches_config_quorum(self):
        store = build_wave_with_support(3)
        config = SystemConfig(n=4, seed=0)
        ordering = DagRiderOrdering(
            0, config, store, FixedCoin({1: 0}), a_deliver=lambda *a: None
        )
        assert ordering.commit_quorum == config.quorum
        ordering.wave_ready(1)
        assert ordering.decided_wave == 1
