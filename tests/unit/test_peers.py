"""Peer-table parsing: schema validation, round trips, file loading."""

import json

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.runtime.peers import (
    PeerTableError,
    allocate_port_block,
    load_peer_table,
    make_peer_table,
    parse_peer_table,
)


def table_dict(n=4, **overrides):
    data = {
        "n": n,
        "seed": 7,
        "peers": {
            str(pid): {"host": "127.0.0.1", "port": 9000 + pid, "control_port": 9100 + pid}
            for pid in range(n)
        },
    }
    data.update(overrides)
    return data


class TestParsing:
    def test_minimal_table_parses(self):
        table = parse_peer_table(table_dict())
        assert table.n == 4
        assert table.seed == 7
        assert table.addresses()[2] == ("127.0.0.1", 9002)
        assert table.entry(2).control_address == ("127.0.0.1", 9102)
        assert table.coin_mode == "ideal"
        assert table.make_dealer() is None

    def test_system_config_knobs_fold_in(self):
        table = parse_peer_table(
            table_dict(wave_length=5, genesis_size=3, byzantine=[1])
        )
        config = table.system_config()
        assert config.wave_length == 5
        assert config.genesis_size == 3
        assert config.byzantine == frozenset({1})

    def test_link_knobs_fold_in(self):
        table = parse_peer_table(
            table_dict(link={"initial_backoff": 0.02, "max_backoff": 0.3})
        )
        assert table.link.initial_backoff == 0.02
        assert table.link.max_backoff == 0.3

    def test_round_trip_through_to_dict(self):
        config = SystemConfig(n=4, seed=3)
        ports = allocate_port_block(8)
        table = make_peer_table(
            {pid: ("127.0.0.1", ports[2 * pid]) for pid in range(4)},
            config,
            coin_mode="threshold",
            control_ports={pid: ports[2 * pid + 1] for pid in range(4)},
        )
        assert parse_peer_table(json.loads(table.dumps())) == table


class TestRejections:
    def test_bad_pid_key(self):
        data = table_dict()
        data["peers"]["zero"] = data["peers"].pop("0")
        with pytest.raises(PeerTableError, match="not a pid"):
            parse_peer_table(data)

    def test_out_of_range_pid(self):
        data = table_dict()
        data["peers"]["9"] = data["peers"].pop("0")
        with pytest.raises(PeerTableError, match="outside"):
            parse_peer_table(data)

    def test_missing_pid(self):
        data = table_dict()
        del data["peers"]["3"]
        with pytest.raises(PeerTableError, match="expected 4 peers"):
            parse_peer_table(data)

    def test_duplicate_address(self):
        data = table_dict()
        data["peers"]["1"]["port"] = data["peers"]["0"]["port"]
        with pytest.raises(PeerTableError, match="reuses"):
            parse_peer_table(data)

    def test_control_port_colliding_with_data_port(self):
        data = table_dict()
        data["peers"]["1"]["control_port"] = data["peers"]["0"]["port"]
        with pytest.raises(PeerTableError, match="reuses"):
            parse_peer_table(data)

    def test_missing_key_material_for_threshold_coin(self):
        with pytest.raises(PeerTableError, match="key material"):
            parse_peer_table(table_dict(coin_mode="threshold"))
        # With the dealer seed present the same table is fine.
        table = parse_peer_table(table_dict(coin_mode="threshold", dealer_seed=9))
        assert table.make_dealer() is not None

    def test_unknown_coin_mode(self):
        with pytest.raises(PeerTableError, match="coin_mode"):
            parse_peer_table(table_dict(coin_mode="quantum"))

    def test_unknown_top_level_key(self):
        with pytest.raises(PeerTableError, match="unknown keys"):
            parse_peer_table(table_dict(extra=1))

    def test_unknown_link_key(self):
        with pytest.raises(PeerTableError, match="unknown link keys"):
            parse_peer_table(table_dict(link={"warp_factor": 9}))

    def test_port_out_of_range(self):
        data = table_dict()
        data["peers"]["0"]["port"] = 70_000
        with pytest.raises(PeerTableError, match="outside"):
            parse_peer_table(data)

    def test_non_integer_n(self):
        data = table_dict()
        data["n"] = "four"
        with pytest.raises(PeerTableError, match="must be an integer"):
            parse_peer_table(data)


class TestIngressAndGc:
    def ingress_table(self):
        data = table_dict()
        for pid in range(4):
            data["peers"][str(pid)]["ingress_port"] = 9200 + pid
        return data

    def test_gc_depth_round_trips(self):
        table = parse_peer_table(table_dict(gc_depth=6))
        assert table.gc_depth == 6
        assert parse_peer_table(json.loads(table.dumps())) == table

    def test_gc_depth_must_be_positive(self):
        with pytest.raises(PeerTableError, match="gc_depth"):
            parse_peer_table(table_dict(gc_depth=0))

    def test_ingress_ports_parse(self):
        table = parse_peer_table(self.ingress_table())
        assert table.entry(1).ingress_address == ("127.0.0.1", 9201)
        assert parse_peer_table(json.loads(table.dumps())) == table

    def test_ingress_port_collision_rejected(self):
        data = self.ingress_table()
        data["peers"]["1"]["ingress_port"] = 9000  # pid 0's data port
        with pytest.raises(PeerTableError, match="reuses"):
            parse_peer_table(data)

    def test_ingress_address_requires_port(self):
        table = parse_peer_table(table_dict())
        with pytest.raises(PeerTableError, match="ingress_port"):
            table.entry(0).ingress_address

    def test_ingress_config_round_trips(self):
        table = parse_peer_table(
            table_dict(ingress={"batch_txs": 8, "max_pending_txs": 100})
        )
        assert table.ingress.batch_txs == 8
        assert table.ingress.max_pending_txs == 100
        assert parse_peer_table(json.loads(table.dumps())) == table

    def test_unknown_ingress_key_rejected(self):
        with pytest.raises(PeerTableError, match="unknown ingress keys"):
            parse_peer_table(table_dict(ingress={"warp_factor": 9}))

    def test_bad_ingress_value_rejected(self):
        with pytest.raises(ConfigurationError, match="batch_txs"):
            parse_peer_table(table_dict(ingress={"batch_txs": 0}))

    def test_make_peer_table_carries_policy(self):
        from repro.mempool.admission import AdmissionConfig

        config = SystemConfig(n=4, seed=3)
        ports = allocate_port_block(12)
        table = make_peer_table(
            {pid: ("127.0.0.1", ports[3 * pid]) for pid in range(4)},
            config,
            control_ports={pid: ports[3 * pid + 1] for pid in range(4)},
            ingress_ports={pid: ports[3 * pid + 2] for pid in range(4)},
            gc_depth=8,
            ingress=AdmissionConfig(batch_txs=16),
        )
        assert table.gc_depth == 8
        assert table.ingress.batch_txs == 16
        assert parse_peer_table(json.loads(table.dumps())) == table


class TestFiles:
    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "peers.json"
        path.write_text(json.dumps(table_dict()), encoding="utf-8")
        table = load_peer_table(str(path))
        assert table.n == 4

    def test_toml_file(self, tmp_path):
        path = tmp_path / "peers.toml"
        path.write_text(
            "\n".join(
                ["n = 2", "seed = 1"]
                + [
                    f'[peers.{pid}]\nhost = "127.0.0.1"\nport = {9000 + pid}'
                    for pid in range(2)
                ]
            ),
            encoding="utf-8",
        )
        table = load_peer_table(str(path))
        assert table.n == 2
        assert table.addresses()[1] == ("127.0.0.1", 9001)

    def test_bad_file_names_source(self, tmp_path):
        data = table_dict()
        del data["peers"]["3"]
        path = tmp_path / "peers.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(PeerTableError, match="peers.json"):
            load_peer_table(str(path))


class TestPortAllocation:
    def test_block_is_distinct_and_bindable(self):
        import socket

        ports = allocate_port_block(8)
        assert len(set(ports)) == 8
        for port in ports:
            with socket.socket() as sock:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind(("127.0.0.1", port))
