"""Unit coverage for the perf layer: cells, documents, comparisons."""

import json

import pytest

from repro.perf.cells import SUITES, batch_nlogn, smoke_cells, suite_cells, table1_cells
from repro.perf.compare import compare_documents
from repro.perf.sweep import SCHEMA_VERSION, metric_payload, run_sweep


def document(wall=1.0, bits=100, commits=8, events=50, suite="smoke"):
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "cells": {
            "cell-a": {
                "params": {"n": 4, "seed": 1},
                "metrics": {
                    "events": events,
                    "total_bits": bits,
                    "commits": commits,
                },
                "timing": {"wall_clock_s": wall, "events_per_sec": events / wall},
            }
        },
        "totals": {"cells": 1, "events": events, "cpu_seconds": wall},
    }


class TestCells:
    def test_suites_registered(self):
        assert set(SUITES) == {"table1", "table1-large", "all", "smoke"}

    def test_table1_large_grid_shape(self):
        cells = suite_cells("table1-large")
        assert {cell.n for cell in cells} == {13, 25, 50, 100}
        assert {cell.broadcast for cell in cells} == {"bracha", "gossip", "avid"}
        names = [cell.name for cell in cells]
        assert len(set(names)) == len(names)
        crash = [cell for cell in cells if cell.fault == "crash_restart"]
        assert len(crash) == 4
        assert all(cell.name.endswith("-crash") for cell in crash)
        assert all(cell.fault is None for cell in table1_cells())
        # Budgets scale: wave targets shrink and event budgets grow with n.
        by_n = {cell.n: cell for cell in cells if cell.fault is None}
        assert by_n[100].wave_target <= by_n[25].wave_target
        assert by_n[100].max_events > by_n[25].max_events

    def test_all_suite_unions_grids(self):
        names = [cell.name for cell in suite_cells("all")]
        assert len(set(names)) == len(names)
        table1 = {cell.name for cell in table1_cells()}
        large = {cell.name for cell in suite_cells("table1-large")}
        assert set(names) == table1 | large

    def test_table1_grid_shape(self):
        cells = table1_cells()
        assert len(cells) == 12
        assert {cell.broadcast for cell in cells} == {"bracha", "gossip", "avid"}
        assert {cell.n for cell in cells} == {4, 7, 10, 13}
        names = [cell.name for cell in cells]
        assert len(set(names)) == len(names)

    def test_seeds_distinct_and_deterministic(self):
        seeds = {cell.name: cell.seed for cell in table1_cells(base_seed=1)}
        again = {cell.name: cell.seed for cell in table1_cells(base_seed=1)}
        assert seeds == again
        assert len(set(seeds.values())) == len(seeds)
        other = {cell.name: cell.seed for cell in table1_cells(base_seed=2)}
        assert all(other[name] != seed for name, seed in seeds.items())

    def test_batch_prescriptions(self):
        assert batch_nlogn(4) == 8
        for cell in smoke_cells():
            assert cell.batch_size >= 1
        with pytest.raises(KeyError):
            suite_cells("nope")


class TestSweepDocument:
    def test_duplicate_cell_names_rejected(self):
        cells = smoke_cells()
        with pytest.raises(ValueError):
            run_sweep([cells[0], cells[0]], suite="smoke", jobs=1)

    def test_metric_payload_strips_timing_and_timestamp(self):
        doc_a = document(wall=1.0)
        doc_b = document(wall=99.0)
        doc_b["generated_at"] = "2026-08-05T00:00:00"
        assert metric_payload(doc_a) == metric_payload(doc_b)
        assert "wall_clock" not in metric_payload(doc_a)
        # The payload is canonical JSON: key order never changes it.
        reordered = json.loads(json.dumps(doc_a))
        assert metric_payload(reordered) == metric_payload(doc_a)

    def test_metric_payload_sees_metric_changes(self):
        assert metric_payload(document(bits=100)) != metric_payload(document(bits=101))


class TestCompare:
    def test_identical_documents_pass(self):
        result = compare_documents(document(), document())
        assert result.ok
        assert "OK" in result.render()

    def test_metric_drift_is_fatal_even_in_advisory_mode(self):
        result = compare_documents(
            document(bits=100), document(bits=200), wall_advisory=True
        )
        assert not result.ok
        assert any("drifted" in error for error in result.errors)

    def test_wall_regression_beyond_tolerance_fails(self):
        result = compare_documents(
            document(wall=1.0), document(wall=2.0), wall_tolerance=0.5
        )
        assert not result.ok
        assert any("wall-clock" in error for error in result.errors)

    def test_wall_regression_within_tolerance_passes(self):
        result = compare_documents(
            document(wall=1.0), document(wall=1.3), wall_tolerance=0.5
        )
        assert result.ok

    def test_wall_advisory_downgrades_to_warning(self):
        result = compare_documents(
            document(wall=1.0), document(wall=5.0), wall_advisory=True
        )
        assert result.ok
        assert result.warnings

    def test_missing_cell_policy(self):
        new = document()
        new["cells"] = {}
        assert not compare_documents(document(), new).ok
        assert compare_documents(document(), new, require_all_cells=False).ok

    def test_schema_mismatch_fails(self):
        new = document()
        new["schema_version"] = SCHEMA_VERSION + 1
        assert not compare_documents(document(), new).ok
