"""Reed-Solomon encode/decode with erasures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.reed_solomon import rs_decode, rs_encode


class TestEncode:
    def test_systematic_prefix(self):
        data = bytes(range(12))
        fragments = rs_encode(data, k=3, n=7)
        # Fragments 0..k-1 are the data laid out column-wise.
        rebuilt = bytearray(12)
        for j in range(3):
            for c, byte in enumerate(fragments[j]):
                rebuilt[c * 3 + j] = byte
        assert bytes(rebuilt) == data

    def test_fragment_count_and_length(self):
        data = b"hello world"
        fragments = rs_encode(data, k=4, n=10)
        assert len(fragments) == 10
        expected_columns = -(-len(data) // 4)
        assert all(len(f) == expected_columns for f in fragments)

    def test_empty_payload(self):
        fragments = rs_encode(b"", k=2, n=4)
        assert rs_decode({0: fragments[0], 3: fragments[3]}, 2, 0) == b""

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rs_encode(b"x", k=0, n=4)
        with pytest.raises(ValueError):
            rs_encode(b"x", k=5, n=4)
        with pytest.raises(ValueError):
            rs_encode(b"x", k=2, n=256)


class TestDecode:
    def test_parity_only_reconstruction(self):
        data = b"The quick brown fox jumps over the lazy dog"
        fragments = rs_encode(data, k=3, n=9)
        parity = {j: fragments[j] for j in (5, 7, 8)}
        assert rs_decode(parity, 3, len(data)) == data

    def test_every_k_subset_reconstructs(self):
        data = bytes(random.Random(0).randrange(256) for _ in range(50))
        k, n = 3, 7
        fragments = rs_encode(data, k, n)
        from itertools import combinations

        for subset in combinations(range(n), k):
            chosen = {j: fragments[j] for j in subset}
            assert rs_decode(chosen, k, len(data)) == data

    def test_too_few_fragments_rejected(self):
        fragments = rs_encode(b"data", k=3, n=5)
        with pytest.raises(ValueError):
            rs_decode({0: fragments[0]}, 3, 4)

    def test_inconsistent_lengths_rejected(self):
        fragments = rs_encode(b"data!", k=2, n=4)
        with pytest.raises(ValueError):
            rs_decode({0: fragments[0], 1: fragments[1] + b"x"}, 2, 5)

    @settings(max_examples=40)
    @given(
        st.binary(min_size=0, max_size=300),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_roundtrip_random_erasures(self, data, k, seed):
        rng = random.Random(seed)
        n = k + rng.randrange(0, 8)
        fragments = rs_encode(data, k, n)
        chosen_indices = rng.sample(range(n), k)
        chosen = {j: fragments[j] for j in chosen_indices}
        assert rs_decode(chosen, k, len(data)) == data

    def test_extra_fragments_harmless(self):
        data = b"payload bytes here"
        fragments = rs_encode(data, k=2, n=6)
        all_of_them = dict(enumerate(fragments))
        assert rs_decode(all_of_them, 2, len(data)) == data
