"""Reliable-link layer: framing, chaos determinism, acks, lifecycle."""

import asyncio

import pytest

from repro.broadcast.gossip import GossipSubscribe
from repro.codec import decode_message, encode_message
from repro.codec.frames import LinkAck, LinkHeartbeat
from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.runtime.chaos import ChaosConfig, ChaosTransport
from repro.runtime.peers import allocate_port_block
from repro.runtime.reliable import (
    HANDSHAKE,
    HEADER,
    SEQ,
    LinkConfig,
    LinkStats,
    frame_bytes,
)
from repro.runtime.transport import TcpNetwork



class Sink:
    """Minimal process: records everything the network delivers."""

    def __init__(self, pid: int):
        self.pid = pid
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message))


def make_pair(n=2, seed=7, link_config=None, chaos=None):
    ports = allocate_port_block(n)
    peers = {pid: ("127.0.0.1", ports[pid]) for pid in range(n)}
    config = SystemConfig(n=n, seed=seed)
    nets = [
        TcpNetwork(config, pid, peers, link_config=link_config, chaos=chaos)
        for pid in range(n)
    ]
    sinks = [Sink(pid) for pid in range(n)]
    for net, sink in zip(nets, sinks):
        net.register(sink)
    return nets, sinks


async def eventually(predicate, timeout=10.0, poll=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(poll)
    return predicate()


class TestFraming:
    def test_frame_layout(self):
        payload = encode_message(GossipSubscribe("hello"))
        frame = frame_bytes(9, payload)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == SEQ.size + len(payload)
        (seq,) = SEQ.unpack(frame[HEADER.size : HEADER.size + SEQ.size])
        assert seq == 9
        assert decode_message(frame[HEADER.size + SEQ.size :]) == GossipSubscribe(
            "hello"
        )

    def test_link_control_frames_round_trip(self):
        for message in (LinkAck(123456), LinkHeartbeat(7)):
            assert decode_message(encode_message(message)) == message
            assert message.wire_size(4) > 0

    def test_link_stats_as_dict(self):
        stats = LinkStats()
        stats.reconnects += 2
        as_dict = stats.as_dict()
        assert as_dict["reconnects"] == 2
        for key in ("retries", "redeliveries", "duplicates_dropped", "control_bits"):
            assert key in as_dict


class TestConfigs:
    def test_link_config_rejects_bad_backoff(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(initial_backoff=0.0)
        with pytest.raises(ConfigurationError):
            LinkConfig(initial_backoff=1.0, max_backoff=0.5)
        with pytest.raises(ConfigurationError):
            LinkConfig(jitter=1.5)

    def test_chaos_config_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(drop_rate=1.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(sever_every=0)


class TestChaosDeterminism:
    def test_same_seed_same_schedule(self):
        config = ChaosConfig(
            drop_rate=0.3, duplicate_rate=0.2, delay_rate=0.2, dial_fail_rate=0.3
        )
        a = ChaosTransport(99, config)
        b = ChaosTransport(99, config)
        fates_a = [a.plan(0, 1, seq) for seq in range(1, 200)]
        fates_b = [b.plan(0, 1, seq) for seq in range(1, 200)]
        assert fates_a == fates_b
        dials_a = [a.fail_dial(2, 3, k) for k in range(1, 50)]
        dials_b = [b.fail_dial(2, 3, k) for k in range(1, 50)]
        assert dials_a == dials_b

    def test_different_seeds_differ(self):
        config = ChaosConfig(drop_rate=0.3)
        a = ChaosTransport(1, config)
        b = ChaosTransport(2, config)
        fates_a = [a.plan(0, 1, seq).drop for seq in range(1, 300)]
        fates_b = [b.plan(0, 1, seq).drop for seq in range(1, 300)]
        assert fates_a != fates_b

    def test_links_are_independent_streams(self):
        config = ChaosConfig(drop_rate=0.5)
        chaos = ChaosTransport(5, config)
        drops_01 = [chaos.plan(0, 1, seq).drop for seq in range(1, 200)]
        drops_10 = [chaos.plan(1, 0, seq).drop for seq in range(1, 200)]
        assert drops_01 != drops_10

    def test_drop_rate_concentrates(self):
        chaos = ChaosTransport(11, ChaosConfig(drop_rate=0.25))
        drops = sum(chaos.plan(0, 1, seq).drop for seq in range(1, 2001))
        assert 0.18 <= drops / 2000 <= 0.32
        assert chaos.drop_fraction() == drops / 2000

    def test_retransmissions_pass_clean(self):
        chaos = ChaosTransport(3, ChaosConfig(drop_rate=0.999, duplicate_rate=0.5))
        first = chaos.plan(0, 1, 1)
        assert first.drop
        again = chaos.plan(0, 1, 1)  # retransmission of the same frame
        assert not again.drop and not again.duplicate and again.delay == 0.0
        assert chaos.first_attempts == 1

    def test_sever_cadence_counts_first_writes_only(self):
        chaos = ChaosTransport(4, ChaosConfig(sever_every=10))
        cuts = sum(chaos.sever_after_write(0, 1, seq) for seq in range(1, 31))
        assert cuts == 3
        # Rewriting old frames (a redelivery burst) never triggers a cut.
        assert not any(chaos.sever_after_write(0, 1, seq) for seq in range(1, 31))
        assert chaos.severs == 3


class TestReliableDelivery:
    def test_in_order_delivery_with_acks_and_heartbeats(self):
        async def main():
            link_config = LinkConfig(heartbeat_interval=0.05, heartbeat_timeout=2.0)
            nets, sinks = make_pair(link_config=link_config)
            await nets[1].start()
            for i in range(50):
                nets[0].send(0, 1, GossipSubscribe(f"m{i}"))
            assert await eventually(lambda: len(sinks[1].received) == 50)
            assert [m.channel for _, m in sinks[1].received] == [
                f"m{i}" for i in range(50)
            ]
            # Cumulative acks flowed back and the idle link heartbeats.
            assert await eventually(
                lambda: nets[0].link_stats.acks_received > 0
                and nets[0].link_stats.heartbeats_sent > 0
            )
            assert nets[1].link_stats.acks_sent > 0
            assert nets[0].link_stats.control_bits > 0
            # Control traffic never enters the §3 protocol accounting.
            assert "LinkAck" not in nets[0].metrics.bits_by_tag
            assert "LinkHeartbeat" not in nets[0].metrics.bits_by_tag
            for net in nets:
                await net.close()
                await net.close()  # idempotent

        asyncio.run(main())

    def test_sever_triggers_reconnect_and_redelivery(self):
        async def main():
            nets, sinks = make_pair(
                link_config=LinkConfig(initial_backoff=0.01, max_backoff=0.1)
            )
            await nets[1].start()
            for i in range(20):
                nets[0].send(0, 1, GossipSubscribe(f"a{i}"))
            assert await eventually(lambda: len(sinks[1].received) == 20)
            assert nets[0].sever_connections() >= 1
            for i in range(20):
                nets[0].send(0, 1, GossipSubscribe(f"b{i}"))
            assert await eventually(lambda: len(sinks[1].received) == 40)
            assert nets[0].link_stats.reconnects >= 1
            names = [m.channel for _, m in sinks[1].received]
            assert names == [f"a{i}" for i in range(20)] + [
                f"b{i}" for i in range(20)
            ]
            for net in nets:
                await net.close()

        asyncio.run(main())

    def test_chaos_duplicates_are_discarded(self):
        async def main():
            chaos = ChaosTransport(13, ChaosConfig(duplicate_rate=0.9))
            nets, sinks = make_pair(chaos=chaos)
            await nets[1].start()
            for i in range(30):
                nets[0].send(0, 1, GossipSubscribe(f"m{i}"))
            assert await eventually(lambda: len(sinks[1].received) == 30)
            assert chaos.duplicates > 0
            assert nets[1].link_stats.duplicates_dropped >= chaos.duplicates
            for net in nets:
                await net.close()

        asyncio.run(main())

    def test_degraded_peer_bounds_queue_then_recovers(self):
        async def main():
            link_config = LinkConfig(
                initial_backoff=0.01,
                max_backoff=0.03,
                degrade_after=0.15,
                max_degraded_queue=5,
            )
            nets, sinks = make_pair(link_config=link_config)
            # Peer 1 is down: nobody listens on its port yet.
            for i in range(25):
                nets[0].send(0, 1, GossipSubscribe(f"m{i}"))
            assert await eventually(
                lambda: 1 in nets[0].degraded_peers, timeout=5.0
            )
            assert nets[0].queue_depth <= 5
            assert nets[0].link_stats.dropped_degraded >= 20
            assert nets[0].link_stats.retries > 0
            # The peer comes back: the bounded tail is delivered, the link
            # un-degrades, and the receiver records the loss as a gap.
            await nets[1].start()
            assert await eventually(lambda: len(sinks[1].received) >= 5)
            assert await eventually(lambda: not nets[0].degraded_peers)
            assert nets[1].link_stats.gaps >= 1
            for net in nets:
                await net.close()

        asyncio.run(main())


class TestHandshakeHardening:
    def test_out_of_range_pid_rejected(self):
        async def main():
            nets, sinks = make_pair(n=2)
            await nets[0].start()
            reader, writer = await asyncio.open_connection(*nets[0].peers[0])
            writer.write(HANDSHAKE.pack(77, 1))  # not a pid of this cluster
            payload = encode_message(GossipSubscribe("evil"))
            writer.write(frame_bytes(1, payload))
            await writer.drain()
            assert await eventually(
                lambda: nets[0].link_stats.handshake_rejects == 1
            )
            assert await eventually(lambda: reader.at_eof(), timeout=5.0)
            assert sinks[0].received == []
            writer.close()
            for net in nets:
                await net.close()

        asyncio.run(main())

    def test_self_pid_rejected(self):
        async def main():
            nets, sinks = make_pair(n=2)
            await nets[0].start()
            _reader, writer = await asyncio.open_connection(*nets[0].peers[0])
            writer.write(HANDSHAKE.pack(0, 1))  # claims to be the node itself
            await writer.drain()
            assert await eventually(
                lambda: nets[0].link_stats.handshake_rejects == 1
            )
            writer.close()
            for net in nets:
                await net.close()

        asyncio.run(main())

    def test_garbage_frame_drops_connection_without_delivery(self):
        async def main():
            nets, sinks = make_pair(n=2)
            await nets[0].start()
            reader, writer = await asyncio.open_connection(*nets[0].peers[0])
            writer.write(HANDSHAKE.pack(1, 1))  # valid handshake
            writer.write(HEADER.pack(12) + b"\xff" * 12)  # undecodable frame
            await writer.drain()
            assert await eventually(lambda: reader.at_eof(), timeout=5.0)
            assert sinks[0].received == []
            writer.close()
            for net in nets:
                await net.close()

        asyncio.run(main())

    def test_duplicate_connection_superseded(self):
        async def main():
            nets, sinks = make_pair(n=2)
            await nets[0].start()
            _r1, w1 = await asyncio.open_connection(*nets[0].peers[0])
            w1.write(HANDSHAKE.pack(1, 1))
            await w1.drain()
            _r2, w2 = await asyncio.open_connection(*nets[0].peers[0])
            w2.write(HANDSHAKE.pack(1, 1))
            await w2.drain()
            assert await eventually(
                lambda: nets[0].link_stats.superseded_connections == 1
            )
            # The newest connection carries traffic; the stale one is closed.
            payload = encode_message(GossipSubscribe("fresh"))
            w2.write(frame_bytes(1, payload))
            await w2.drain()
            assert await eventually(lambda: len(sinks[0].received) == 1)
            w1.close()
            w2.close()
            for net in nets:
                await net.close()

        asyncio.run(main())

    def test_new_incarnation_resets_duplicate_cursor(self):
        """A restarted peer's fresh sequence space must not be swallowed.

        The duplicate cursor deliberately survives reconnects (same
        incarnation: redelivered frames are dropped), but a *restarted*
        sender numbers frames from 1 again — the incarnation change in the
        handshake is what tells the two cases apart.
        """

        async def main():
            nets, sinks = make_pair(n=2)
            await nets[0].start()
            _r1, w1 = await asyncio.open_connection(*nets[0].peers[0])
            w1.write(HANDSHAKE.pack(1, 100))  # first boot
            w1.write(frame_bytes(1, encode_message(GossipSubscribe("before"))))
            await w1.drain()
            assert await eventually(lambda: len(sinks[0].received) == 1)

            # Same incarnation, same seq: a redelivery, dropped as duplicate.
            _r2, w2 = await asyncio.open_connection(*nets[0].peers[0])
            w2.write(HANDSHAKE.pack(1, 100))
            w2.write(frame_bytes(1, encode_message(GossipSubscribe("dup"))))
            await w2.drain()
            assert await eventually(
                lambda: nets[0].link_stats.duplicates_dropped == 1
            )
            assert len(sinks[0].received) == 1

            # New incarnation, same seq: a restarted peer, cursor reset.
            _r3, w3 = await asyncio.open_connection(*nets[0].peers[0])
            w3.write(HANDSHAKE.pack(1, 200))
            w3.write(frame_bytes(1, encode_message(GossipSubscribe("reborn"))))
            await w3.drain()
            assert await eventually(lambda: len(sinks[0].received) == 2)
            assert nets[0].link_stats.peer_restarts == 1
            assert sinks[0].received[1][1] == GossipSubscribe("reborn")
            for writer in (w1, w2, w3):
                writer.close()
            for net in nets:
                await net.close()

        asyncio.run(main())


class TestLoopRequirement:
    def test_constructing_outside_a_loop_raises(self):
        config = SystemConfig(n=2, seed=1)
        peers = {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)}
        with pytest.raises(RuntimeError):
            TcpNetwork(config, 0, peers)
