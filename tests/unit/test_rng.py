"""Deterministic RNG derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import derive_rng, derive_seed


class TestDerivation:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_rng(1, "a").random() == derive_rng(1, "a").random()

    def test_labels_separate_streams(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_boundaries_not_ambiguous(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    @given(st.integers(), st.text(max_size=20))
    def test_seed_in_64_bit_range(self, seed, label):
        assert 0 <= derive_seed(seed, label) < 2**64

    @given(st.integers(min_value=0, max_value=2**32))
    def test_rng_streams_usable(self, seed):
        rng = derive_rng(seed, "test")
        values = [rng.randrange(100) for _ in range(5)]
        assert all(0 <= v < 100 for v in values)
