"""Scenario schema: strict upfront validation of chaos scenario files."""

import pytest

from repro.common.errors import ConfigurationError
from repro.runtime.scenario import load_scenario, parse_scenario, parse_step


def minimal(**overrides):
    raw = {
        "name": "smoke",
        "steps": [{"kind": "crash", "pid": 1}],
    }
    raw.update(overrides)
    return raw


class TestParseScenario:
    def test_defaults_fill_in(self):
        scenario = parse_scenario(minimal())
        assert scenario.name == "smoke"
        assert (scenario.n, scenario.seed, scenario.coin) == (4, 7, "ideal")
        assert scenario.waves == 5
        step = scenario.steps[0]
        assert (step.kind, step.pid, step.signal) == ("crash", 1, "kill")
        assert step.at_wave == 1 and step.cycles == 1

    def test_explicit_fields_override(self):
        scenario = parse_scenario(
            minimal(n=5, seed=13, coin="threshold", waves=2, timeout=30.0)
        )
        assert scenario.n == 5 and scenario.seed == 13
        assert scenario.coin == "threshold"
        assert scenario.waves == 2 and scenario.timeout == 30.0

    def test_gc_depth_defaults_on(self):
        from repro.runtime.scenario import DEFAULT_SCENARIO_GC_DEPTH

        assert parse_scenario(minimal()).gc_depth == DEFAULT_SCENARIO_GC_DEPTH

    def test_gc_depth_overrides_and_opts_out(self):
        assert parse_scenario(minimal(gc_depth=3)).gc_depth == 3
        assert parse_scenario(minimal(gc_depth=None)).gc_depth is None

    @pytest.mark.parametrize("bad", [0, -1, True, "deep"])
    def test_bad_gc_depth_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="gc_depth"):
            parse_scenario(minimal(gc_depth=bad))

    @pytest.mark.parametrize(
        "broken",
        [
            {"name": ""},  # empty name
            {"name": 7},  # non-string name
            {"n": 3},  # below the 3f+1 floor for f=1
            {"n": "four"},
            {"coin": "quantum"},
            {"waves": 0},
            {"timeout": 0.5},
            {"steps": "crash"},
            {"bogus": True},  # unknown top-level key
        ],
    )
    def test_invalid_documents_rejected(self, broken):
        with pytest.raises(ConfigurationError):
            parse_scenario(minimal(**broken))

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_scenario(["not", "an", "object"])


class TestParseStep:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            parse_step({"kind": "crash", "pid": 0, "restart": 1}, 0, 4)

    @pytest.mark.parametrize(
        "broken",
        [
            {"kind": "explode", "pid": 0},
            {"kind": "crash"},  # crash needs a pid
            {"kind": "crash", "pid": 4},  # out of range for n=4
            {"kind": "crash", "pid": True},  # bool is not a pid
            {"kind": "crash", "pid": 0, "signal": "hup"},
            {"kind": "crash", "pid": 0, "at_wave": 0},
            {"kind": "churn", "pid": 0, "cycles": 0},
            {"kind": "slow", "pid": 0, "delay": -0.1},
        ],
    )
    def test_invalid_steps_rejected(self, broken):
        with pytest.raises(ConfigurationError):
            parse_step(broken, 0, 4)

    def test_partition_groups_must_cover_every_pid_once(self):
        good = parse_step(
            {"kind": "partition", "groups": [[0, 1], [2, 3]]}, 0, 4
        )
        assert good.groups == ((0, 1), (2, 3))
        for groups in (
            [[0, 1]],  # only one group
            [[0, 1], [2]],  # pid 3 missing
            [[0, 1], [1, 2, 3]],  # pid 1 twice
            [[0, 1], [2, 9]],  # out of range
            [[0, 1], []],  # empty group
        ):
            with pytest.raises(ConfigurationError):
                parse_step({"kind": "partition", "groups": groups}, 0, 4)


class TestLoadScenario:
    def test_loads_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            '{"name": "j", "steps": [{"kind": "crash", "pid": 2}]}',
            encoding="utf-8",
        )
        scenario = load_scenario(str(path))
        assert scenario.name == "j" and scenario.steps[0].pid == 2

    def test_loads_toml(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            'name = "t"\nwaves = 2\n\n[[steps]]\nkind = "slow"\npid = 0\n'
            "delay = 0.2\n",
            encoding="utf-8",
        )
        scenario = load_scenario(str(path))
        assert scenario.name == "t" and scenario.waves == 2
        assert scenario.steps[0].kind == "slow"
        assert scenario.steps[0].delay == 0.2

    def test_invalid_json_reports_the_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="bad.json"):
            load_scenario(str(path))

    def test_invalid_toml_reports_the_path(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("= broken =", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="bad.toml"):
            load_scenario(str(path))

    def test_repo_scenario_file_is_valid(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        scenario = load_scenario(str(repo / "scenarios" / "crash-restart.json"))
        assert scenario.name == "crash-restart"
        assert scenario.steps[0].kind == "crash"

    def test_repo_stall_probe_scenario_is_valid(self):
        # The committed stall-probe scenario splits n=4 into 2+2: neither
        # side holds a commit quorum (3), so the quorum frontier goes flat
        # until the heal — the shape the fabric's stall detector keys on.
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        scenario = load_scenario(str(repo / "scenarios" / "stall-probe.json"))
        assert scenario.name == "stall-probe"
        step = scenario.steps[0]
        assert step.kind == "partition"
        assert step.groups == ((0, 1), (2, 3))
        assert step.heal_after > 0
