"""Deterministic event-loop behaviour."""

import pytest

from repro.sim.scheduler import Scheduler


class TestScheduler:
    def test_time_ordering(self):
        sched = Scheduler()
        fired = []
        sched.call_at(3.0, lambda: fired.append(3))
        sched.call_at(1.0, lambda: fired.append(1))
        sched.call_at(2.0, lambda: fired.append(2))
        sched.run()
        assert fired == [1, 2, 3]

    def test_fifo_tie_break(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.call_at(1.0, lambda i=i: fired.append(i))
        sched.run()
        assert fired == list(range(10))

    def test_now_advances(self):
        sched = Scheduler()
        seen = []
        sched.call_at(5.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [5.0]
        assert sched.now == 5.0

    def test_call_later_relative(self):
        sched = Scheduler()
        seen = []
        sched.call_at(2.0, lambda: sched.call_later(3.0, lambda: seen.append(sched.now)))
        sched.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        sched = Scheduler()
        sched.call_at(2.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().call_later(-1.0, lambda: None)

    def test_cancel(self):
        sched = Scheduler()
        fired = []
        handle = sched.call_at(1.0, lambda: fired.append("cancelled"))
        sched.call_at(2.0, lambda: fired.append("kept"))
        sched.cancel(handle)
        sched.run()
        assert fired == ["kept"]

    def test_run_until(self):
        sched = Scheduler()
        fired = []
        sched.call_at(1.0, lambda: fired.append(1))
        sched.call_at(10.0, lambda: fired.append(10))
        sched.run(until=5.0)
        assert fired == [1]
        assert sched.now == 5.0
        sched.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_past_drained_queue(self):
        # Regression: when the queue drained before `until`, `run` used to
        # leave `now` at the last event time instead of `until`, so a
        # subsequent `call_later` was scheduled relative to stale time.
        sched = Scheduler()
        sched.call_at(1.0, lambda: None)
        sched.run(until=5.0)
        assert sched.now == 5.0
        seen = []
        sched.call_later(1.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [6.0]

    def test_run_until_advances_clock_on_empty_queue(self):
        sched = Scheduler()
        sched.run(until=3.0)
        assert sched.now == 3.0

    def test_run_until_advances_clock_when_all_events_cancelled(self):
        sched = Scheduler()
        handle = sched.call_at(1.0, lambda: None)
        sched.cancel(handle)
        sched.run(until=4.0)
        assert sched.now == 4.0
        assert sched.events_processed == 0

    def test_run_until_does_not_move_clock_backwards(self):
        sched = Scheduler()
        sched.call_at(7.0, lambda: None)
        sched.run()
        assert sched.now == 7.0
        sched.run(until=5.0)  # already past; must not rewind
        assert sched.now == 7.0

    def test_max_events(self):
        sched = Scheduler()
        fired = []
        for i in range(5):
            sched.call_at(float(i), lambda i=i: fired.append(i))
        sched.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_when(self):
        sched = Scheduler()
        fired = []
        for i in range(5):
            sched.call_at(float(i), lambda i=i: fired.append(i))
        sched.run(stop_when=lambda: len(fired) >= 2)
        assert fired == [0, 1]

    def test_events_created_during_run(self):
        sched = Scheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sched.call_later(1.0, lambda: chain(depth + 1))

        sched.call_at(0.0, lambda: chain(0))
        sched.run()
        assert fired == [0, 1, 2, 3]

    def test_pending_count(self):
        sched = Scheduler()
        h1 = sched.call_at(1.0, lambda: None)
        sched.call_at(2.0, lambda: None)
        assert sched.pending == 2
        sched.cancel(h1)
        assert sched.pending == 1

    def test_cancel_after_fire_is_idempotent(self):
        # Cancelling a handle whose event already fired must not leak state
        # or disturb the pending count (the old `_cancelled` set kept such
        # handles forever).
        sched = Scheduler()
        fired = []
        handle = sched.call_at(1.0, lambda: fired.append("fired"))
        sched.run()
        assert fired == ["fired"]
        sched.cancel(handle)  # no-op: already fired
        sched.cancel(handle)  # idempotent
        assert sched.pending == 0
        later = sched.call_at(2.0, lambda: fired.append("later"))
        assert sched.pending == 1
        sched.run()
        assert fired == ["fired", "later"]
        sched.cancel(later)
        assert sched.pending == 0

    def test_double_cancel_keeps_pending_accurate(self):
        sched = Scheduler()
        handles = [sched.call_at(float(i), lambda: None) for i in range(4)]
        sched.cancel(handles[1])
        sched.cancel(handles[1])  # double-cancel must not double-count
        assert sched.pending == 3
        sched.run()
        assert sched.pending == 0
        assert sched.events_processed == 3

    def test_callback_args_carried_in_event(self):
        sched = Scheduler()
        seen = []
        sched.call_at(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        sched.call_later(2.0, seen.append, "plain")
        sched.run()
        assert seen == [(1, "x"), "plain"]

    def test_pending_calls_exposes_args_and_supports_cancel(self):
        sched = Scheduler()
        seen = []

        def deliver(tag):
            seen.append(tag)

        sched.call_at(1.0, deliver, "a")
        keep = sched.call_at(2.0, deliver, "b")
        sched.call_at(3.0, lambda: seen.append("other"))
        pending = dict(sched.pending_calls(deliver))
        assert sorted(args for args in pending.values()) == [("a",), ("b",)]
        for handle, args in pending.items():
            if args == ("a",):
                sched.cancel(handle)
        assert keep in dict(sched.pending_calls(deliver))
        sched.run()
        assert seen == ["b", "other"]

    def test_empty_run_is_noop(self):
        sched = Scheduler()
        sched.run()
        assert sched.events_processed == 0
