"""Deterministic event-loop behaviour."""

import pytest

from repro.sim.scheduler import Scheduler


class TestScheduler:
    def test_time_ordering(self):
        sched = Scheduler()
        fired = []
        sched.call_at(3.0, lambda: fired.append(3))
        sched.call_at(1.0, lambda: fired.append(1))
        sched.call_at(2.0, lambda: fired.append(2))
        sched.run()
        assert fired == [1, 2, 3]

    def test_fifo_tie_break(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.call_at(1.0, lambda i=i: fired.append(i))
        sched.run()
        assert fired == list(range(10))

    def test_now_advances(self):
        sched = Scheduler()
        seen = []
        sched.call_at(5.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [5.0]
        assert sched.now == 5.0

    def test_call_later_relative(self):
        sched = Scheduler()
        seen = []
        sched.call_at(2.0, lambda: sched.call_later(3.0, lambda: seen.append(sched.now)))
        sched.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        sched = Scheduler()
        sched.call_at(2.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().call_later(-1.0, lambda: None)

    def test_cancel(self):
        sched = Scheduler()
        fired = []
        handle = sched.call_at(1.0, lambda: fired.append("cancelled"))
        sched.call_at(2.0, lambda: fired.append("kept"))
        sched.cancel(handle)
        sched.run()
        assert fired == ["kept"]

    def test_run_until(self):
        sched = Scheduler()
        fired = []
        sched.call_at(1.0, lambda: fired.append(1))
        sched.call_at(10.0, lambda: fired.append(10))
        sched.run(until=5.0)
        assert fired == [1]
        assert sched.now == 5.0
        sched.run()
        assert fired == [1, 10]

    def test_max_events(self):
        sched = Scheduler()
        fired = []
        for i in range(5):
            sched.call_at(float(i), lambda i=i: fired.append(i))
        sched.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_when(self):
        sched = Scheduler()
        fired = []
        for i in range(5):
            sched.call_at(float(i), lambda i=i: fired.append(i))
        sched.run(stop_when=lambda: len(fired) >= 2)
        assert fired == [0, 1]

    def test_events_created_during_run(self):
        sched = Scheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sched.call_later(1.0, lambda: chain(depth + 1))

        sched.call_at(0.0, lambda: chain(0))
        sched.run()
        assert fired == [0, 1, 2, 3]

    def test_pending_count(self):
        sched = Scheduler()
        h1 = sched.call_at(1.0, lambda: None)
        sched.call_at(2.0, lambda: None)
        assert sched.pending == 2
        sched.cancel(h1)
        assert sched.pending == 1

    def test_empty_run_is_noop(self):
        sched = Scheduler()
        sched.run()
        assert sched.events_processed == 0
