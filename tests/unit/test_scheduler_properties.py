"""Property-based fuzzing of the scheduler and sampled gossip costs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.scheduler import Scheduler


class TestSchedulerProperties:
    @settings(max_examples=60)
    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=40))
    def test_events_fire_in_time_order(self, delays):
        sched = Scheduler()
        fired = []
        for delay in delays:
            sched.call_at(delay, lambda d=delay: fired.append(d))
        sched.run()
        assert fired == sorted(delays)
        assert len(fired) == len(delays)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=10), st.booleans()),
            max_size=30,
        )
    )
    def test_cancellation_never_fires(self, items):
        sched = Scheduler()
        fired = []
        handles = []
        for i, (delay, cancel) in enumerate(items):
            handles.append(
                (sched.call_at(delay, lambda i=i: fired.append(i)), cancel)
            )
        for handle, cancel in handles:
            if cancel:
                sched.cancel(handle)
        sched.run()
        expected = [i for i, (_, cancel) in enumerate(items) if not cancel]
        assert sorted(fired) == expected

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.01, max_value=5), min_size=1, max_size=15))
    def test_nested_scheduling_keeps_clock_monotone(self, delays):
        sched = Scheduler()
        seen = []

        def chain(remaining):
            seen.append(sched.now)
            if remaining:
                sched.call_later(remaining[0], lambda: chain(remaining[1:]))

        sched.call_at(0.0, lambda: chain(delays))
        sched.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays) + 1
