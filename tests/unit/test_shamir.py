"""Shamir secret sharing: reconstruction and information-theoretic secrecy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SecretSharingError
from repro.crypto.shamir import (
    PRIME,
    lagrange_interpolate_at_zero,
    reconstruct_secret,
    share_secret,
)


class TestSharing:
    def test_basic_roundtrip(self):
        rng = random.Random(1)
        shares = share_secret(42, threshold=3, n=7, rng=rng)
        assert reconstruct_secret(shares[:3], 3) == 42

    def test_any_subset_reconstructs(self):
        rng = random.Random(2)
        secret = 987654321
        shares = share_secret(secret, threshold=3, n=7, rng=rng)
        for _ in range(20):
            subset = rng.sample(shares, 3)
            assert reconstruct_secret(subset, 3) == secret

    def test_threshold_one_is_replication(self):
        rng = random.Random(3)
        shares = share_secret(5, threshold=1, n=4, rng=rng)
        for share in shares:
            assert reconstruct_secret([share], 1) == 5

    def test_too_few_shares_rejected(self):
        rng = random.Random(4)
        shares = share_secret(5, threshold=3, n=4, rng=rng)
        with pytest.raises(SecretSharingError):
            reconstruct_secret(shares[:2], 3)

    def test_bad_threshold_rejected(self):
        rng = random.Random(5)
        with pytest.raises(SecretSharingError):
            share_secret(5, threshold=0, n=4, rng=rng)
        with pytest.raises(SecretSharingError):
            share_secret(5, threshold=5, n=4, rng=rng)

    def test_duplicate_points_rejected(self):
        with pytest.raises(SecretSharingError):
            lagrange_interpolate_at_zero([(1, 5), (1, 6)])

    def test_secret_reduced_mod_prime(self):
        rng = random.Random(6)
        shares = share_secret(PRIME + 7, threshold=2, n=4, rng=rng)
        assert reconstruct_secret(shares[:2], 2) == 7

    @settings(max_examples=50)
    @given(
        st.integers(min_value=0, max_value=PRIME - 1),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_roundtrip_property(self, secret, threshold, seed):
        rng = random.Random(seed)
        n = threshold + rng.randrange(0, 4)
        shares = share_secret(secret, threshold, n, rng)
        subset = rng.sample(shares, threshold)
        assert reconstruct_secret(subset, threshold) == secret


class TestSecrecy:
    def test_t_minus_one_shares_consistent_with_any_secret(self):
        """Information-theoretic secrecy: t-1 shares fit every candidate secret.

        For any t-1 shares there exists a degree-(t-1) polynomial through
        them and any chosen constant term — so they reveal nothing.
        """
        rng = random.Random(7)
        threshold = 3
        shares = share_secret(1111, threshold, 7, rng)
        partial = shares[:threshold - 1]
        for candidate in (0, 1, 999, PRIME - 1):
            # Interpolating partial + (0, candidate) always succeeds and is
            # consistent: the resulting polynomial passes through all points.
            points = [(0, candidate)] + [(x, y) for x, y in partial]
            value = lagrange_interpolate_at_zero(points)
            assert value == candidate

    def test_distinct_secrets_give_distinct_share_sets(self):
        rng1, rng2 = random.Random(8), random.Random(8)
        shares_a = share_secret(1, 2, 4, rng1)
        shares_b = share_secret(2, 2, 4, rng2)
        assert shares_a != shares_b
