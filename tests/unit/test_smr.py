"""Baseline SMR wrapper: concurrent slots, sequential output."""

import pytest

from repro.baselines.smr import SmrNode
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.sim.adversary import UniformDelay
from repro.sim.network import Network
from repro.sim.scheduler import Scheduler


def run_smr(protocol, n=4, seed=0, slots=5, window=None, max_events=600_000):
    config = SystemConfig(n=n, seed=seed)
    sched = Scheduler()
    network = Network(sched, config, UniformDelay(derive_rng(seed, "d")))
    nodes = [
        SmrNode(pid, network, protocol=protocol, max_slots=slots, window=window)
        for pid in range(n)
    ]
    for node in nodes:
        sched.call_at(0.0, node.start)
    sched.run(
        max_events=max_events,
        stop_when=lambda: all(node.output_count >= slots for node in nodes),
    )
    return nodes, network


@pytest.mark.parametrize("protocol", ["vaba", "dumbo", "honeybadger"])
class TestSmr:
    def test_all_slots_output(self, protocol):
        nodes, _net = run_smr(protocol)
        assert all(node.output_count >= 5 for node in nodes)

    def test_agreement_per_slot(self, protocol):
        nodes, _net = run_smr(protocol, seed=1)
        for slot in range(5):
            values = {
                tuple((b.proposer, b.sequence) for b in node.outputs[slot].blocks)
                for node in nodes
            }
            assert len(values) == 1

    def test_outputs_strictly_slot_ordered(self, protocol):
        nodes, _net = run_smr(protocol, seed=2)
        for node in nodes:
            slots = [output.slot for output in node.outputs]
            assert slots == list(range(len(slots)))

    def test_output_time_at_least_decide_time(self, protocol):
        nodes, _net = run_smr(protocol, seed=3)
        for node in nodes:
            for output in node.outputs:
                assert output.output_time >= output.decided_time


class TestSmrMechanics:
    def test_window_limits_open_slots(self):
        config = SystemConfig(n=4, seed=0)
        sched = Scheduler()
        network = Network(sched, config, UniformDelay(derive_rng(0, "d")))
        nodes = [
            SmrNode(pid, network, protocol="vaba", window=2, max_slots=10)
            for pid in range(4)
        ]
        nodes[0].start()
        assert nodes[0]._proposed == {0, 1}

    def test_unknown_protocol_rejected(self):
        config = SystemConfig(n=4, seed=0)
        sched = Scheduler()
        network = Network(sched, config, UniformDelay(derive_rng(0, "d")))
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SmrNode(0, network, protocol="nope")

    def test_head_of_line_blocking(self):
        """A decided later slot is not output before earlier slots decide.

        This is the structural source of the O(log n) time complexity.
        """
        nodes, _net = run_smr("vaba", seed=5, slots=8, window=8)
        for node in nodes:
            # outputs are contiguous from 0 even though decisions raced
            slots = [output.slot for output in node.outputs]
            assert slots == sorted(slots)
            assert slots[0] == 0

    def test_ordered_blocks_flatten(self):
        nodes, _net = run_smr("honeybadger", seed=6, slots=3)
        blocks = nodes[0].ordered_blocks()
        assert len(blocks) >= 3  # at least one block per slot
