"""Unit tests for the live telemetry plane (``repro.obs.stream``).

Covers the bounded event ring (overflow drops oldest + counts), the
filtered bus subscriber, metric-delta encoding (a folded stream of
deltas reproduces the registry's absolute state), the newline-JSON
stream wire format, the flight recorder, and the stall detector
(a frozen quorum trips it; a slow-but-progressing one does not).
"""

import pytest

from repro.obs import EventBus, MetricsRegistry, Observability
from repro.obs.stream import (
    DEFAULT_STREAM_CAPACITY,
    EventRing,
    FlightRecorder,
    MetricsDelta,
    STREAM_SCHEMA,
    STREAM_VERSION,
    StallDetector,
    StreamFormatError,
    StreamSubscriber,
    apply_delta,
    decode_stream_line,
    delta_line,
    encode_stream_line,
    event_line,
    registry_totals,
    stream_header,
)


class TestEventRing:
    def test_overflow_drops_oldest_and_counts(self):
        bus = EventBus()
        ring = EventRing(3)
        for index in range(5):
            ring.append(bus.emit_at(float(index), 0, "tick", seq=index))
        assert ring.dropped == 2
        assert [event.get("seq") for event in ring.peek()] == [2, 3, 4]

    def test_drain_empties_but_keeps_drop_count(self):
        bus = EventBus()
        ring = EventRing(2)
        for index in range(4):
            ring.append(bus.emit_at(float(index), 0, "tick", seq=index))
        drained = ring.drain()
        assert [event.get("seq") for event in drained] == [2, 3]
        assert len(ring) == 0
        assert ring.dropped == 2
        assert ring.drain() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventRing(0)


class TestStreamSubscriber:
    def test_receives_events_after_subscribe(self):
        bus = EventBus()
        bus.emit_at(0.0, 0, "before")
        sub = StreamSubscriber(bus, capacity=8)
        bus.emit_at(1.0, 0, "after")
        events = sub.drain()
        assert [event.kind for event in events] == ["after"]
        assert sub.total_matched == 1

    def test_kind_filter(self):
        bus = EventBus()
        sub = StreamSubscriber(bus, capacity=8, kinds=["commit"])
        bus.emit_at(1.0, 0, "commit", wave=1)
        bus.emit_at(2.0, 0, "vertex_added", round=1, source=0)
        assert [event.kind for event in sub.drain()] == ["commit"]

    def test_min_round_filter_passes_unrounded_events(self):
        bus = EventBus()
        sub = StreamSubscriber(bus, capacity=8, min_round=5)
        bus.emit_at(1.0, 0, "vertex_added", round=3, source=0)
        bus.emit_at(2.0, 0, "vertex_added", round=7, source=0)
        bus.emit_at(3.0, 0, "commit", wave=2)  # no round field: passes
        kinds = [(event.kind, event.get("round")) for event in sub.drain()]
        assert kinds == [("vertex_added", 7), ("commit", None)]

    def test_overflow_counted_via_dropped_property(self):
        bus = EventBus()
        sub = StreamSubscriber(bus, capacity=2)
        for index in range(5):
            bus.emit_at(float(index), 0, "tick", seq=index)
        assert sub.dropped == 3
        assert [event.get("seq") for event in sub.drain()] == [3, 4]

    def test_close_detaches_from_bus(self):
        bus = EventBus()
        sub = StreamSubscriber(bus, capacity=8)
        sub.close()
        sub.close()  # idempotent
        bus.emit_at(1.0, 0, "late")
        assert sub.drain() == []

    def test_filters_dict_round_trips_into_header(self):
        bus = EventBus()
        sub = StreamSubscriber(bus, capacity=8, kinds=["b", "a"], min_round=2)
        header = stream_header(3, sub.filters_dict(), 0.5)
        decoded = decode_stream_line(encode_stream_line(header))
        assert decoded["type"] == "header"
        assert decoded["pid"] == 3
        assert decoded["filters"] == {"kinds": ["a", "b"], "min_round": 2}
        assert decoded["interval"] == 0.5


class TestMetricsDelta:
    def test_deltas_fold_back_to_registry_totals(self):
        registry = MetricsRegistry()
        delta = MetricsDelta(registry)
        state: dict[str, object] = {}

        registry.counter("sent").inc(3)
        registry.gauge("depth").set(5.0)
        registry.histogram("lat").record(1.5)
        apply_delta(state, delta.collect())

        registry.counter("sent").inc(2)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat").record(0.5)
        registry.histogram("lat").record(4.0)
        apply_delta(state, delta.collect())

        assert state == registry_totals(registry)
        assert state["counters"] == {"sent": 5}
        assert state["gauges"] == {"depth": 2.0}
        assert state["histograms"] == {"lat": {"count": 3, "sum": 6.0}}

    def test_quiet_tick_encodes_empty_delta(self):
        registry = MetricsRegistry()
        delta = MetricsDelta(registry)
        registry.counter("sent").inc()
        assert delta.collect() != {}
        moved = delta.collect()
        # Counters/histograms with no movement vanish; gauges report their
        # current value every tick (they are levels, not increments).
        assert "counters" not in moved
        assert "histograms" not in moved

    def test_delta_survives_wire_round_trip(self):
        registry = MetricsRegistry()
        delta = MetricsDelta(registry)
        registry.counter("sent").inc(7)
        line = delta_line(1, 2.5, status={"ok": True}, metrics=delta.collect())
        decoded = decode_stream_line(encode_stream_line(line))
        assert decoded["type"] == "delta"
        body = decoded["delta"]
        assert body["seq"] == 1 and body["t"] == 2.5
        assert body["metrics"] == {"counters": {"sent": 7}}


class TestWireFormat:
    def test_event_line_round_trip(self):
        bus = EventBus()
        event = bus.emit_at(1.25, 2, "commit", wave=3, delivered=4)
        decoded = decode_stream_line(encode_stream_line(event_line(event)))
        assert decoded["type"] == "event"
        assert decoded["decoded"] == event

    def test_bad_version_rejected(self):
        text = encode_stream_line(
            {"schema": STREAM_SCHEMA, "version": STREAM_VERSION + 1, "pid": 0}
        )
        with pytest.raises(StreamFormatError):
            decode_stream_line(text)

    def test_garbage_rejected(self):
        for bad in ["not json", "[1,2]", '{"neither": 1}']:
            with pytest.raises(StreamFormatError):
                decode_stream_line(bad)

    def test_default_capacity_is_sane(self):
        assert DEFAULT_STREAM_CAPACITY >= 1024


class TestFlightRecorder:
    def test_keeps_last_k_and_counts_overwrites(self):
        obs = Observability()
        flight = FlightRecorder(obs.bus, capacity=4)
        for index in range(10):
            obs.emit(0, "tick", seq=index)
        dump = flight.dump("manual", 9.0)
        assert dump["count"] == 4
        assert dump["overwritten"] == 6
        assert [record["f"]["seq"] for record in dump["events"]] == [6, 7, 8, 9]
        assert dump["reason"] == "manual"
        assert flight.dumps_taken == 1

    def test_dump_is_non_destructive(self):
        obs = Observability()
        flight = FlightRecorder(obs.bus, capacity=4)
        obs.emit(0, "tick", seq=0)
        first = flight.dump("a", 1.0)
        second = flight.dump("b", 2.0)
        assert first["events"] == second["events"]

    def test_close_detaches(self):
        obs = Observability()
        flight = FlightRecorder(obs.bus, capacity=4)
        flight.close()
        obs.emit(0, "tick", seq=0)
        assert flight.dump("after", 1.0)["count"] == 0


class TestStallDetector:
    def test_frozen_quorum_trips_after_window(self):
        detector = StallDetector(4, window=10.0)
        for pid in range(4):
            detector.observe(pid, 2, now=0.0)
        assert detector.quorum_frontier() == 2
        # Nothing advances: same frontiers at every poll.
        for pid in range(4):
            detector.observe(pid, 2, now=9.0)
        assert not detector.check(9.0)
        assert detector.check(10.0)
        assert detector.stalls_reported == 1

    def test_slow_but_progressing_quorum_stays_quiet(self):
        detector = StallDetector(4, window=10.0)
        wave = 0
        for tick in range(8):
            now = tick * 6.0  # slower than the window/2, faster than window
            wave += 1
            for pid in range(3):  # pid 3 is frozen at wave 0 forever
                detector.observe(pid, wave, now)
            detector.observe(3, 0, now)
            assert not detector.check(now)
        assert detector.stalls_reported == 0

    def test_single_frozen_node_does_not_trip(self):
        # n=4 -> quorum 3: the frontier tracks the 3rd-highest wave, so one
        # frozen node never defines it while three keep advancing.
        detector = StallDetector(4, window=10.0)
        for tick in range(20):
            now = float(tick)
            for pid in range(3):
                detector.observe(pid, tick, now)
            detector.observe(3, 0, now)
        assert detector.quorum_frontier() == 19
        assert not detector.check(20.0)

    def test_rearm_reports_once_per_window(self):
        detector = StallDetector(4, window=5.0)
        for pid in range(4):
            detector.observe(pid, 1, now=0.0)
        assert detector.check(5.0)
        assert not detector.check(6.0)  # re-armed at 5.0
        assert detector.check(10.0)
        assert detector.stalls_reported == 2

    def test_no_samples_no_stall(self):
        detector = StallDetector(4, window=5.0)
        assert not detector.check(100.0)
        assert detector.stalled_for(100.0) == 0.0

    def test_quorum_needs_enough_nodes(self):
        detector = StallDetector(4, window=5.0)
        detector.observe(0, 7, now=0.0)
        assert detector.quorum_frontier() == -1

    def test_default_quorum_is_n_minus_f(self):
        assert StallDetector(4).quorum == 3
        assert StallDetector(7).quorum == 5
        assert StallDetector(10).quorum == 7
        assert StallDetector(1).quorum == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            StallDetector(0)
        with pytest.raises(ValueError):
            StallDetector(4, quorum=5)
