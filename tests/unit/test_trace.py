"""Protocol tracing and the cross-event orderings it lets tests assert."""

from repro.common.config import SystemConfig
from repro.core.harness import DagRiderDeployment
from repro.sim.trace import TraceEvent, Tracer


def traced_deployment(seed=15):
    tracer = Tracer()
    dep = DagRiderDeployment(
        SystemConfig(n=4, seed=seed), default_node_kwargs={"tracer": tracer}
    )
    assert dep.run_until_ordered(15)
    return dep, tracer


class TestTracer:
    def test_record_and_filter(self):
        tracer = Tracer()
        tracer.record(1.0, 0, "x", a=1)
        tracer.record(2.0, 1, "y")
        tracer.record(3.0, 0, "x", a=2)
        assert len(tracer) == 3
        assert len(tracer.of_kind("x")) == 2
        assert len(tracer.of_kind("x", pid=0)) == 2
        assert tracer.of_kind("y")[0] == TraceEvent(2.0, 1, "y")
        assert tracer.kinds() == {"x", "y"}

    def test_format(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record(float(i), 0, "tick", n=i)
        text = tracer.format(limit=3)
        assert "tick" in text
        assert "2 more events" in text


class TestProtocolEventOrdering:
    def test_expected_kinds_present(self):
        _dep, tracer = traced_deployment()
        assert {"vertex_added", "wave_ready", "commit", "a_deliver"} <= tracer.kinds()

    def test_events_time_ordered(self):
        _dep, tracer = traced_deployment()
        times = [event.time for event in tracer]
        assert times == sorted(times)

    def test_every_delivery_preceded_by_commit(self):
        """a_deliver events only happen during a commit at that process."""
        _dep, tracer = traced_deployment()
        for pid in range(4):
            deliveries = tracer.of_kind("a_deliver", pid=pid)
            commits = tracer.of_kind("commit", pid=pid)
            assert deliveries and commits
            first_commit = min(event.time for event in commits)
            assert min(e.time for e in deliveries) >= first_commit

    def test_commit_follows_its_wave_ready(self):
        _dep, tracer = traced_deployment()
        for pid in range(4):
            ready_times = {
                event.detail["wave"]: event.time
                for event in tracer.of_kind("wave_ready", pid=pid)
            }
            for commit in tracer.of_kind("commit", pid=pid):
                assert commit.time >= ready_times[commit.detail["wave"]]

    def test_waves_signalled_in_order(self):
        _dep, tracer = traced_deployment()
        for pid in range(4):
            waves = [e.detail["wave"] for e in tracer.of_kind("wave_ready", pid=pid)]
            assert waves == sorted(waves)

    def test_commit_delivered_counts_match_log(self):
        dep, tracer = traced_deployment()
        for node in dep.correct_nodes:
            traced = sum(
                event.detail["delivered"]
                for event in tracer.of_kind("commit", pid=node.pid)
            )
            assert traced == len(node.ordered)
