"""Round/wave arithmetic and quorum sizes (paper §2, §5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import (
    byzantine_quorum,
    fault_tolerance,
    round_of_wave,
    validity_quorum,
    wave_of_round,
    wave_round_index,
)


class TestQuorums:
    def test_paper_configuration_n4(self):
        assert fault_tolerance(4) == 1
        assert byzantine_quorum(4) == 3
        assert validity_quorum(4) == 2

    def test_paper_configuration_n3f_plus_1(self):
        for f in range(1, 20):
            n = 3 * f + 1
            assert fault_tolerance(n) == f
            assert byzantine_quorum(n) == 2 * f + 1
            assert validity_quorum(n) == f + 1

    def test_non_canonical_n_rounds_down(self):
        assert fault_tolerance(5) == 1
        assert fault_tolerance(6) == 1
        assert fault_tolerance(7) == 2

    def test_single_process(self):
        assert fault_tolerance(1) == 0
        assert byzantine_quorum(1) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fault_tolerance(0)

    @given(st.integers(min_value=1, max_value=3_000))
    def test_quorum_intersection_property(self, f):
        """For canonical n = 3f+1, two 2f+1 quorums intersect in >= f+1."""
        n = 3 * f + 1
        quorum = byzantine_quorum(n)
        assert 2 * quorum - n >= fault_tolerance(n) + 1

    @given(st.integers(min_value=1, max_value=10_000))
    def test_byzantine_minority_below_third(self, n):
        assert 3 * fault_tolerance(n) < n


class TestWaveArithmetic:
    def test_first_wave_rounds(self):
        """Paper §5: wave 1 is rounds 1..4."""
        assert [round_of_wave(1, k) for k in (1, 2, 3, 4)] == [1, 2, 3, 4]

    def test_second_wave_rounds(self):
        assert [round_of_wave(2, k) for k in (1, 2, 3, 4)] == [5, 6, 7, 8]

    def test_figure2_waves(self):
        """Figure 2: wave 2's last round is 8, wave 3's is 12."""
        assert round_of_wave(2, 4) == 8
        assert round_of_wave(3, 4) == 12

    def test_round_index_boundaries(self):
        with pytest.raises(ValueError):
            round_of_wave(1, 0)
        with pytest.raises(ValueError):
            round_of_wave(1, 5)
        with pytest.raises(ValueError):
            round_of_wave(0, 1)

    def test_wave_of_round_rejects_round_zero(self):
        with pytest.raises(ValueError):
            wave_of_round(0)

    def test_custom_wave_length(self):
        assert round_of_wave(2, 1, wave_length=3) == 4
        assert wave_of_round(4, wave_length=3) == 2

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=4),
    )
    def test_roundtrip(self, wave, k):
        r = round_of_wave(wave, k)
        assert wave_of_round(r) == wave
        assert wave_round_index(r) == k

    @given(st.integers(min_value=1, max_value=100_000))
    def test_every_round_in_exactly_one_wave(self, r):
        w = wave_of_round(r)
        k = wave_round_index(r)
        assert round_of_wave(w, k) == r
