"""VABA's multi-view path: leader suppression forces view changes."""

from repro.baselines.vaba import VabaMessage, VabaSlot
from repro.common.config import SystemConfig
from repro.common.rng import derive_rng
from repro.mempool.blocks import Block
from repro.sim.adversary import GroupVictimDelay, UniformDelay
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler


class Host(Process):
    def __init__(self, pid, network, elect):
        super().__init__(pid, network)
        self.decided = None
        self.slot = VabaSlot(
            pid, network.config, elect, self.send, self.broadcast,
            on_decide=lambda v: setattr(self, "decided", v),
        )

    def on_message(self, src, message):
        self.slot.handle(src, message)


def run_suppressed(seed=0):
    """Delay one fixed process's messages; when elected, views must advance."""
    config = SystemConfig(n=4, seed=seed)
    sched = Scheduler()
    adversary = GroupVictimDelay(
        UniformDelay(derive_rng(seed, "d"), 0.1, 1.0),
        n=4,
        victims=1,
        seed=seed,
        group_of=lambda msg: 0,  # one global group: same victim throughout
        penalty=15.0,
    )
    network = Network(sched, config, adversary)
    (victim,) = adversary.victims_of(0)
    # Elect the victim in view 1, someone else in view 2.
    elect = lambda view: victim if view == 1 else (victim + 1) % 4
    hosts = [Host(pid, network, elect) for pid in range(4)]
    for host in hosts:
        value = Block(host.pid, 0, (b"v%d" % host.pid,))
        sched.call_at(0.0, lambda h=host, v=value: h.slot.propose(v))
    sched.run(max_events=300_000)
    return hosts, victim


class TestViewChange:
    def test_suppressed_leader_forces_second_view(self):
        hosts, victim = run_suppressed(seed=1)
        non_victims = [h for h in hosts if h.pid != victim]
        assert all(h.decided is not None for h in non_victims)
        assert max(h.slot.views_used for h in non_victims) >= 2

    def test_agreement_across_views(self):
        hosts, victim = run_suppressed(seed=2)
        decided = {h.decided.digest for h in hosts if h.decided is not None}
        assert len(decided) == 1

    def test_adopted_value_was_proposed(self):
        hosts, victim = run_suppressed(seed=3)
        proposals = {
            Block(pid, 0, (b"v%d" % pid,)).digest for pid in range(4)
        }
        for host in hosts:
            if host.decided is not None:
                assert host.decided.digest in proposals

    def test_decide_message_short_circuits_laggards(self):
        """A DECIDE echo lets a process that saw nothing else decide."""
        config = SystemConfig(n=4, seed=4)
        sched = Scheduler()
        network = Network(sched, config, UniformDelay(derive_rng(4, "d")))
        hosts = [Host(pid, network, lambda view: 0) for pid in range(4)]
        value = Block(0, 0, (b"x",))
        hosts[0].send(1, VabaMessage("DECIDE", 1, 0, value))
        sched.run()
        assert hosts[1].decided == value
