"""Vertex struct and its canonical codec (Algorithm 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import WireFormatError
from repro.dag.vertex import Ref, Vertex, genesis_vertices
from repro.mempool.blocks import Block


def vertex_strategy():
    return st.builds(
        Vertex,
        round=st.integers(min_value=2, max_value=1000),
        source=st.integers(min_value=0, max_value=50),
        block=st.builds(
            Block,
            proposer=st.integers(min_value=0, max_value=50),
            sequence=st.integers(min_value=0, max_value=10_000),
            transactions=st.lists(st.binary(max_size=30), max_size=4).map(tuple),
        ),
        strong_parents=st.sets(st.integers(min_value=0, max_value=50), max_size=8).map(
            frozenset
        ),
        weak_parents=st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=100),
            ).map(lambda t: Ref(*t)),
            max_size=4,
        ).map(frozenset),
        coin_share=st.one_of(st.none(), st.integers(min_value=0, max_value=2**128 - 1)),
    )


class TestVertexCodec:
    def test_roundtrip_simple(self):
        vertex = Vertex(3, 1, Block(1, 3, (b"tx",)), frozenset({0, 1, 2}))
        assert Vertex.from_bytes(vertex.to_bytes()) == vertex

    def test_roundtrip_with_weak_edges_and_share(self):
        vertex = Vertex(
            9,
            2,
            Block(2, 9),
            frozenset({0, 1, 3}),
            frozenset({Ref(2, 3), Ref(0, 1)}),
            coin_share=12345678901234567890,
        )
        assert Vertex.from_bytes(vertex.to_bytes()) == vertex

    @given(vertex_strategy())
    def test_roundtrip_property(self, vertex):
        assert Vertex.from_bytes(vertex.to_bytes()) == vertex

    def test_trailing_bytes_rejected(self):
        data = Vertex(1, 0, Block(0, 1), frozenset({0})).to_bytes()
        with pytest.raises(WireFormatError):
            Vertex.from_bytes(data + b"\x00")

    def test_truncated_rejected(self):
        data = Vertex(1, 0, Block(0, 1), frozenset({0, 1})).to_bytes()
        with pytest.raises(WireFormatError):
            Vertex.from_bytes(data[:5])

    def test_bad_share_flag_rejected(self):
        data = bytearray(Vertex(1, 0, Block(0, 1), frozenset({0})).to_bytes())
        # The flag byte sits right after the fixed header + one strong parent.
        flag_offset = 8 + 2 + 2 + 2 + 2
        assert data[flag_offset] == 0
        data[flag_offset] = 9
        with pytest.raises(WireFormatError):
            Vertex.from_bytes(bytes(data))

    def test_digest_changes_with_content(self):
        a = Vertex(1, 0, Block(0, 1, (b"a",)), frozenset({0}))
        b = Vertex(1, 0, Block(0, 1, (b"b",)), frozenset({0}))
        assert a.digest != b.digest


class TestVertexStructure:
    def test_parent_refs_order_and_rounds(self):
        vertex = Vertex(
            5, 0, Block(0, 5), frozenset({2, 0, 1}), frozenset({Ref(3, 1)})
        )
        refs = vertex.parent_refs()
        assert refs[:3] == [Ref(0, 4), Ref(1, 4), Ref(2, 4)]
        assert refs[3] == Ref(3, 1)

    def test_ref(self):
        vertex = Vertex(5, 2, Block(2, 5), frozenset({0}))
        assert vertex.ref == Ref(2, 5)

    def test_genesis(self):
        genesis = genesis_vertices(3)
        assert [v.source for v in genesis] == [0, 1, 2]
        assert all(v.round == 0 for v in genesis)
        assert all(not v.strong_parents and not v.weak_parents for v in genesis)
