"""Storage layer: WAL framing/recovery edge cases and snapshot atomicity."""

import os

import pytest

from repro.common.errors import ConfigurationError, StorageError
from repro.storage.snapshot import Snapshot, load_snapshot, write_snapshot
from repro.storage.wal import (
    WAL_COMMIT,
    WAL_CREATED,
    WAL_VERTEX,
    WriteAheadLog,
    read_wal,
)


def open_wal(path, **kwargs):
    wal, records = WriteAheadLog.open(str(path), **kwargs)
    return wal, records


class TestWalRoundTrip:
    def test_append_reopen_reads_back_in_order(self, tmp_path):
        path = tmp_path / "wal.log"
        wal, records = open_wal(path)
        assert records == []
        wal.append(WAL_VERTEX, b"v1")
        wal.append(WAL_COMMIT, b"c1")
        wal.append(WAL_CREATED, b"own")
        wal.close()
        _wal, records = open_wal(path)
        assert [(r.seq, r.kind, r.payload) for r in records] == [
            (1, WAL_VERTEX, b"v1"),
            (2, WAL_COMMIT, b"c1"),
            (3, WAL_CREATED, b"own"),
        ]

    def test_missing_file_reads_empty(self, tmp_path):
        records, good = read_wal(str(tmp_path / "absent.log"))
        assert records == [] and good == 0

    def test_empty_file_reads_empty(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        records, good = read_wal(str(path))
        assert records == [] and good == 0

    def test_unknown_kind_rejected_on_append(self, tmp_path):
        wal, _ = open_wal(tmp_path / "wal.log")
        with pytest.raises(ConfigurationError):
            wal.append(99, b"?")
        wal.close()
        with pytest.raises(ConfigurationError):
            wal.append(WAL_VERTEX, b"closed")


class TestWalCorruptionTolerance:
    def test_torn_final_record_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        wal, _ = open_wal(path)
        wal.append(WAL_VERTEX, b"keep-me")
        wal.append(WAL_VERTEX, b"torn-away")
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # crash mid-append of the last record

        wal, records = open_wal(path)
        assert [r.payload for r in records] == [b"keep-me"]
        # The opener truncated the torn bytes; appends resume cleanly and
        # the sequence number does not reuse the torn record's slot value.
        seq = wal.append(WAL_VERTEX, b"after-crash")
        wal.close()
        assert seq == 2
        _wal, records = open_wal(path)
        assert [r.payload for r in records] == [b"keep-me", b"after-crash"]

    def test_crc_corruption_drops_record_and_everything_after(self, tmp_path):
        path = tmp_path / "wal.log"
        wal, _ = open_wal(path)
        wal.append(WAL_VERTEX, b"good")
        wal.sync()  # flush so the file size marks record 2's start
        second_start = path.stat().st_size
        wal.append(WAL_VERTEX, b"rotten")
        wal.append(WAL_VERTEX, b"after-the-rot")
        wal.close()
        data = bytearray(path.read_bytes())
        data[second_start + 12] ^= 0xFF  # flip a payload byte of record 2
        path.write_bytes(bytes(data))
        records, good = read_wal(str(path))
        assert [r.payload for r in records] == [b"good"]
        assert good == second_start

    def test_truncated_header_stops_reading(self, tmp_path):
        path = tmp_path / "wal.log"
        wal, _ = open_wal(path)
        wal.append(WAL_COMMIT, b"c")
        wal.close()
        good_size = path.stat().st_size
        with open(path, "ab") as stream:
            stream.write(b"\x00\x00\x00")  # not even a full header
        records, good = read_wal(str(path))
        assert len(records) == 1
        assert good == good_size


class TestWalSequencing:
    def test_seq_survives_truncate(self, tmp_path):
        path = tmp_path / "wal.log"
        wal, _ = open_wal(path)
        wal.append(WAL_VERTEX, b"a")
        wal.append(WAL_VERTEX, b"b")
        wal.truncate()  # a snapshot captured both records
        seq = wal.append(WAL_VERTEX, b"c")
        wal.close()
        # Monotonic through the truncation: this is what lets replay skip
        # records a snapshot already covers by comparing sequence numbers.
        assert seq == 3
        _wal, records = open_wal(path)
        assert [(r.seq, r.payload) for r in records] == [(3, b"c")]

    def test_start_seq_floor_applies_when_log_is_behind(self, tmp_path):
        # Snapshot-newer-than-log: the snapshot covered up to seq 10, then
        # the crash hit after the WAL truncation — the empty log must not
        # restart numbering below the snapshot's floor.
        wal, records = open_wal(tmp_path / "wal.log", start_seq=10)
        assert records == []
        assert wal.append(WAL_VERTEX, b"x") == 11
        wal.close()


class TestWalFsyncPolicy:
    def test_policy_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(str(tmp_path / "w"), fsync="sometimes")

    @pytest.mark.parametrize(
        "policy,expected",
        [("always", 3), ("commit", 2), ("never", 0)],
    )
    def test_sync_counts_per_policy(self, tmp_path, policy, expected):
        wal, _ = open_wal(tmp_path / "wal.log", fsync=policy)
        wal.append(WAL_VERTEX, b"v")  # not durable under "commit"
        wal.append(WAL_CREATED, b"own")
        wal.append(WAL_COMMIT, b"c")
        assert wal.synced == expected
        wal.close()

    def test_force_sync_overrides_never(self, tmp_path):
        wal, _ = open_wal(tmp_path / "wal.log", fsync="never")
        wal.append(WAL_VERTEX, b"v", force_sync=True)
        assert wal.synced == 1
        wal.close()


class TestSnapshot:
    def snapshot(self):
        return Snapshot(
            last_wal_seq=17,
            floor=4,
            decided_wave=3,
            builder_round=14,
            block_sequence=9,
            vertices=(b"vertex-a", b"vertex-b"),
            delivered=((0, 5), (2, 6)),
            pending=(b"mine",),
            ordered_digests=("d0", "d1"),
        )

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "snapshot.bin")
        write_snapshot(path, self.snapshot())
        assert load_snapshot(path) == self.snapshot()

    def test_missing_file_is_none(self, tmp_path):
        assert load_snapshot(str(tmp_path / "absent.bin")) is None

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "snapshot.bin"
        write_snapshot(str(path), self.snapshot())
        assert not os.path.exists(str(path) + ".tmp")
        # Overwrite is atomic too: readers see old or new, never a hybrid.
        write_snapshot(str(path), self.snapshot())
        assert load_snapshot(str(path)) == self.snapshot()

    def test_corrupt_body_raises(self, tmp_path):
        path = tmp_path / "snapshot.bin"
        write_snapshot(str(path), self.snapshot())
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_snapshot(str(path))

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "snapshot.bin"
        write_snapshot(str(path), self.snapshot())
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_snapshot(str(path))

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "snapshot.bin"
        path.write_bytes(b"RD")
        with pytest.raises(StorageError):
            load_snapshot(str(path))
