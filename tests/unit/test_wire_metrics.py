"""Wire-size model and metrics accounting."""


from repro.broadcast.bracha import BrachaMessage
from repro.coin.threshold import CoinShareMessage
from repro.dag.vertex import Vertex
from repro.mempool.blocks import Block
from repro.sim.metrics import MetricsCollector
from repro.sim.wire import bits_for_process_id


class TestWireSizes:
    def test_process_id_bits(self):
        assert bits_for_process_id(2) == 1
        assert bits_for_process_id(4) == 2
        assert bits_for_process_id(5) == 3
        assert bits_for_process_id(1024) == 10

    def test_vertex_payload_bits_match_encoding(self):
        vertex = Vertex(3, 1, Block(1, 3, (b"tx",)), frozenset({0, 1, 2}))
        assert vertex.wire_bits(4) == 8 * len(vertex.to_bytes())

    def test_vertex_size_grows_with_block(self):
        small = Vertex(3, 1, Block(1, 3, (b"t",)), frozenset({0, 1, 2}))
        big = Vertex(3, 1, Block(1, 3, (b"t" * 100,)), frozenset({0, 1, 2}))
        assert big.wire_bits(4) > small.wire_bits(4)

    def test_bracha_message_carries_payload_cost(self):
        vertex = Vertex(3, 1, Block(1, 3, (b"tx" * 50,)), frozenset({0, 1, 2}))
        message = BrachaMessage("ECHO", 1, 3, vertex)
        assert message.wire_size(4) > vertex.wire_bits(4)

    def test_coin_share_constant(self):
        assert CoinShareMessage(1, 5).wire_size(4) == CoinShareMessage(99, 2**120).wire_size(4)

    def test_tags(self):
        vertex = Vertex(3, 1, Block(1, 3), frozenset({0, 1, 2}))
        assert BrachaMessage("SEND", 1, 3, vertex).tag() == "bracha.send"
        assert CoinShareMessage(1, 1).tag() == "CoinShareMessage"


class TestMetricsCollector:
    def test_bits_per_unit(self):
        metrics = MetricsCollector()
        metrics.record_send(0, 100, "x", src_correct=True)
        metrics.record_send(1, 50, "x", src_correct=False)
        assert metrics.correct_bits_total == 100
        assert metrics.total_bits == 150
        assert metrics.bits_per_unit(4) == 25.0
        assert metrics.bits_per_unit(0) == float("inf")

    def test_tag_breakdown(self):
        metrics = MetricsCollector()
        metrics.record_send(0, 10, "a", True)
        metrics.record_send(0, 20, "b", True)
        metrics.record_send(0, 30, "a", True)
        assert metrics.bits_by_tag["a"] == 40
        assert metrics.messages_by_tag["a"] == 2

    def test_time_units(self):
        metrics = MetricsCollector()
        metrics.record_delay(2.0, correct_pair=True)
        metrics.record_delay(8.0, correct_pair=True)
        metrics.record_delay(100.0, correct_pair=False)  # byzantine: ignored
        assert metrics.max_correct_delay == 8.0
        assert metrics.time_units(16.0) == 2.0
        assert metrics.mean_correct_delay == 5.0

    def test_time_units_without_delays(self):
        assert MetricsCollector().time_units(5.0) == 0.0
        assert MetricsCollector().mean_correct_delay == 0.0
